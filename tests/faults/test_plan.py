"""Tests for declarative fault plans."""

import random

import pytest

from repro.faults.plan import (
    ADAPTER_KINDS,
    FAULT_KINDS,
    HOST_KINDS,
    RING_KINDS,
    SERVER_KINDS,
    FaultEvent,
    FaultPlan,
)
from repro.sim.units import MS, SEC


def test_taxonomy_is_partitioned():
    families = (RING_KINDS, ADAPTER_KINDS, HOST_KINDS, SERVER_KINDS)
    union = frozenset().union(*families)
    assert union == FAULT_KINDS
    for i, a in enumerate(families):
        for b in families[i + 1:]:
            assert not a & b


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan().add(0, "cosmic_ray")


def test_ring_kind_must_not_target_a_host():
    with pytest.raises(ValueError, match="ring-level"):
        FaultPlan().add(0, "purge", host="receiver")


def test_host_kind_needs_a_target():
    with pytest.raises(ValueError, match="needs a target host"):
        FaultPlan().add(0, "cpu_steal", duration_ns=SEC)


def test_negative_time_rejected():
    with pytest.raises(ValueError, match="past"):
        FaultEvent(at_ns=-1, kind="purge").validate()


def test_builders_chain_and_record_params():
    plan = (
        FaultPlan()
        .purge(1 * SEC)
        .purge_burst(2 * SEC, count=10)
        .token_starvation(3 * SEC, duration_ns=SEC)
        .cpu_steal(4 * SEC, duration_ns=SEC, host="receiver", layers=2)
        .frame_loss(5 * SEC, duration_ns=100 * MS)
    )
    assert len(plan) == 5
    kinds = [e.kind for e in plan]
    assert kinds == [
        "purge", "purge_burst", "token_starvation", "cpu_steal", "frame_loss",
    ]
    steal = plan.events[3]
    assert steal.host == "receiver"
    assert steal.params["layers"] == 2
    plan.validate()


def test_sorted_events_orders_by_time():
    plan = FaultPlan().purge(3 * SEC).purge(1 * SEC).purge(2 * SEC)
    assert [e.at_ns for e in plan.sorted_events()] == [1 * SEC, 2 * SEC, 3 * SEC]


def test_horizon_covers_durations_and_bursts():
    plan = FaultPlan().tx_stall(1 * SEC, duration_ns=50 * MS, host="h")
    assert plan.horizon_ns() == 1 * SEC + 50 * MS
    plan = FaultPlan().purge_burst(2 * SEC, count=10, spacing_ns=10 * MS)
    assert plan.horizon_ns() == 2 * SEC + 100 * MS


def test_describe_lists_every_event():
    plan = FaultPlan().purge(1 * SEC).cpu_steal(2 * SEC, duration_ns=SEC, host="rx")
    text = plan.describe()
    assert "purge" in text and "cpu_steal" in text and "rx" in text


def test_random_plan_is_deterministic():
    def build():
        return FaultPlan.random(
            random.Random(99),
            duration_ns=10 * SEC,
            intensity=1.5,
            hosts=["transmitter", "receiver"],
        )

    a, b = build(), build()
    assert [  # identical event for event
        (e.at_ns, e.kind, e.host, sorted(e.params.items())) for e in a
    ] == [(e.at_ns, e.kind, e.host, sorted(e.params.items())) for e in b]
    assert len(a) >= 1


def test_random_plans_differ_across_seeds():
    a = FaultPlan.random(random.Random(1), duration_ns=10 * SEC, hosts=["h"])
    b = FaultPlan.random(random.Random(2), duration_ns=10 * SEC, hosts=["h"])
    assert [(e.at_ns, e.kind) for e in a] != [(e.at_ns, e.kind) for e in b]


def test_random_plan_respects_start_and_duration():
    plan = FaultPlan.random(
        random.Random(5), duration_ns=10 * SEC, intensity=3.0, hosts=["h"]
    )
    for event in plan:
        assert 250 * MS <= event.at_ns < 10 * SEC


def test_random_without_hosts_emits_only_ring_kinds():
    plan = FaultPlan.random(random.Random(7), duration_ns=10 * SEC, intensity=2.0)
    assert len(plan) >= 1
    for event in plan:
        assert event.kind in RING_KINDS


def test_random_intensity_zero_is_empty():
    assert len(FaultPlan.random(random.Random(1), duration_ns=SEC, intensity=0)) == 0


def test_random_negative_intensity_rejected():
    with pytest.raises(ValueError):
        FaultPlan.random(random.Random(1), duration_ns=SEC, intensity=-1)
