"""Tests for the fault injector: each kind wounds the right layer."""

import pytest

from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.faults import FaultInjector, FaultPlan
from repro.sim.units import MS, SEC


def streaming_bed(seed=11):
    bed = _Testbed(seed=seed)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    return bed, tx, rx, session


def test_arming_twice_is_an_error():
    bed, *_ = streaming_bed()
    injector = FaultInjector(bed, FaultPlan().purge(1 * SEC))
    injector.arm()
    with pytest.raises(RuntimeError, match="already armed"):
        injector.arm()


def test_purge_goes_through_the_active_monitor():
    bed, _tx, _rx, _session = streaming_bed()
    FaultInjector(bed, FaultPlan().purge(1 * SEC)).arm()
    bed.run(2 * SEC)
    assert bed.monitor.stats_purges_issued == 1
    assert bed.ring.stats_purges == 1


def test_purge_burst_issues_the_whole_burst():
    bed, _tx, _rx, _session = streaming_bed()
    FaultInjector(bed, FaultPlan().purge_burst(1 * SEC, count=10)).arm()
    bed.run(2 * SEC)
    assert bed.ring.stats_purges == 10


def test_soft_error_storm_purges_with_the_seeded_rng():
    bed, _tx, _rx, _session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().soft_error_storm(
            1 * SEC, duration_ns=2 * SEC, rate_per_hour=3600.0 * 50
        ),
    ).arm()
    bed.run(4 * SEC)
    # 50/hour-equivalent rate over 2 s -> ~100 expected; wide Poisson band.
    assert 40 <= bed.ring.stats_purges <= 200


def test_frame_loss_eats_ctmsp_silently_then_lifts():
    bed, _tx, _rx, session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().frame_loss(1 * SEC, duration_ns=200 * MS, protocol="ctmsp"),
    ).arm()
    bed.run(3 * SEC)
    assert bed.ring.stats_frames_lost_to_fault > 0
    assert session.sink_tracker.lost_packets > 0
    # The filter is removed when the window closes; the stream recovered.
    assert bed.ring.fault_filters == []
    assert session.stats.last_arrival > 2 * SEC


def test_frame_loss_spares_other_protocols():
    bed, _tx, _rx, session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().frame_loss(1 * SEC, duration_ns=200 * MS, protocol="llc"),
    ).arm()
    bed.run(2 * SEC)
    assert session.sink_tracker.lost_packets == 0


def test_token_starvation_counts_hostile_frames():
    bed, _tx, _rx, _session = streaming_bed()
    injector = FaultInjector(
        bed, FaultPlan().token_starvation(1 * SEC, duration_ns=500 * MS)
    )
    injector.arm()
    bed.run(2 * SEC)
    assert injector.stats_hostile_frames > 50
    assert "chaos-hostile" in bed.ring.stats_by_protocol


def test_tx_stall_delays_the_adapter():
    bed, tx, _rx, _session = streaming_bed()
    FaultInjector(
        bed, FaultPlan().tx_stall(1 * SEC, duration_ns=30 * MS, host="transmitter")
    ).arm()
    bed.run(2 * SEC)
    assert tx.tr_adapter.stats_tx_stalled_ns > 0


def test_cpu_steal_contention_is_balanced():
    bed, _tx, rx, _session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().cpu_steal(1 * SEC, duration_ns=500 * MS, host="receiver", layers=3),
    ).arm()
    bed.run(2 * SEC)
    # Every started contention layer ended when the window closed.
    assert rx.machine.cpu._contention_sources == 0


def test_rx_buffer_exhaustion_overruns_then_recovers():
    bed, _tx, rx, session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().rx_buffer_exhaustion(
            1 * SEC, duration_ns=100 * MS, host="receiver"
        ),
    ).arm()
    bed.run(3 * SEC)
    assert rx.tr_adapter.stats_rx_overruns > 0
    assert session.sink_tracker.lost_packets > 0
    # Seized buffers were returned; the stream flows again afterwards.
    assert rx.tr_adapter._fault_rx_seized == 0
    assert session.stats.last_arrival > 2 * SEC


def test_dropped_tx_complete_wedges_the_transmit_path():
    bed, _tx, _rx, session = streaming_bed()
    FaultInjector(
        bed, FaultPlan().drop_tx_complete(1 * SEC, host="transmitter")
    ).arm()
    bed.run(3 * SEC)
    # The driver never learns the transmit finished: the stream stops dead.
    assert session.stats.last_arrival < 1 * SEC + 50 * MS


def test_delayed_tx_complete_degrades_but_recovers():
    bed, _tx, _rx, session = streaming_bed()
    FaultInjector(
        bed,
        FaultPlan().drop_tx_complete(
            1 * SEC, host="transmitter", delay_ns=40 * MS
        ),
    ).arm()
    bed.run(3 * SEC)
    assert session.stats.last_arrival > 2 * SEC


def test_unknown_host_is_skipped_and_counted():
    bed, _tx, _rx, _session = streaming_bed()
    injector = FaultInjector(
        bed, FaultPlan().cpu_steal(1 * SEC, duration_ns=SEC, host="nonesuch")
    )
    injector.arm()
    bed.run(2 * SEC)
    assert injector.stats_skipped_no_target == 1
    assert injector.stats_fired == 0


def test_same_seed_and_plan_wound_identically():
    def run():
        bed, _tx, _rx, session = streaming_bed(seed=23)
        plan = (
            FaultPlan()
            .purge_burst(1 * SEC, count=8)
            .token_starvation(1500 * MS, duration_ns=400 * MS)
            .frame_loss(2 * SEC, duration_ns=100 * MS, fraction=0.5)
        )
        FaultInjector(bed, plan).arm()
        bed.run(3 * SEC)
        t = session.sink_tracker
        return (
            t.delivered,
            t.lost_packets,
            t.gaps,
            bed.ring.stats_frames_lost_to_fault,
            session.stats.arrival_times,
        )

    assert run() == run()
