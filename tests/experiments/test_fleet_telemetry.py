"""Fleet telemetry: journalling, the observe-only golden, watch, status.

The contract under test: telemetry records ride in the same journal as
point results, are invisible to the merge (byte-identical reports with
telemetry on or off), survive ``--resume``, and are readable by a
concurrent watcher while the supervisor is mid-append.
"""

import json

import pytest

from repro.experiments.fleet import (
    Journal,
    fleet_status,
    fleet_watch,
    journal_path,
    run_fleet,
    validation_fleet_spec,
)
from repro.obs import telemetry


def small_validation_spec(seeds=(3, 4)):
    return validation_fleet_spec(list(seeds), n_frames=12)


def events_in(path):
    _header, _records, recs = Journal.load_full(path)
    return [r["telemetry"] for r in recs]


# ----------------------------------------------------------------------
# the observe-only golden: the merge cannot tell telemetry was there
# ----------------------------------------------------------------------
def test_merged_report_is_byte_identical_with_telemetry_on_or_off(tmp_path):
    spec = small_validation_spec()
    with_telemetry = run_fleet(spec, jobs=1, state_dir=tmp_path / "on")
    without = run_fleet(spec, jobs=1, state_dir=tmp_path / "off", telemetry=False)
    assert with_telemetry.render().encode() == without.render().encode()

    # The journals themselves differ exactly by the telemetry records.
    assert events_in(with_telemetry.journal) == [
        "campaign_started",
        "point_started",
        "point_finished",
        "point_started",
        "point_finished",
        "campaign_finished",
    ]
    assert events_in(without.journal) == []

    # ...and the result loader reads the same result set from both.
    _h1, on_records = Journal.load(with_telemetry.journal)
    _h2, off_records = Journal.load(without.journal)
    assert on_records == off_records


def test_point_finished_records_carry_wall_clock_and_sim_events(tmp_path):
    spec = small_validation_spec()
    result = run_fleet(spec, jobs=1, state_dir=tmp_path)
    _header, _records, recs = Journal.load_full(result.journal)
    finished = telemetry.events_of(recs, telemetry.EVENT_POINT_FINISHED)
    assert len(finished) == 2
    for rec in finished:
        assert rec["status"] == "ok"
        assert rec["wall_ms"] > 0
        assert rec["worker"] == 0  # serial path
        assert rec["point"] in {p.key for p in spec.points}
    started = telemetry.events_of(recs, telemetry.EVENT_CAMPAIGN_STARTED)
    assert started[0]["total_points"] == 2
    done = telemetry.events_of(recs, telemetry.EVENT_CAMPAIGN_FINISHED)
    assert done[0]["completed"] == 2
    assert "fleet.points.completed" in done[0]["metrics"]["counters"]


def test_telemetry_round_trips_through_resume(tmp_path):
    spec = small_validation_spec()
    first = run_fleet(spec, jobs=1, state_dir=tmp_path)
    resumed = run_fleet(spec, jobs=1, state_dir=tmp_path, resume=True)
    # The resumed run re-ran nothing, merged identically...
    assert resumed.render() == first.render()
    # ...and appended its own campaign markers after the first run's.
    _header, _records, recs = Journal.load_full(resumed.journal)
    started = telemetry.events_of(recs, telemetry.EVENT_CAMPAIGN_STARTED)
    assert [r["resumed"] for r in started] == [0, 2]
    # The progress arithmetic still reads clean counts from the mix.
    header, records, _ = Journal.load_full(resumed.journal)
    prog = telemetry.progress(header, records, recs)
    assert prog.done == 2 and prog.finished


# ----------------------------------------------------------------------
# torn tails under a concurrent writer
# ----------------------------------------------------------------------
def test_load_full_skips_concurrent_writers_torn_tail(tmp_path):
    spec = small_validation_spec()
    path = journal_path(spec, tmp_path)
    journal = Journal.create(path, spec)
    journal.record_ok(spec.points[0], 1, {"agrees": True})
    journal.record_telemetry(
        telemetry.record(
            telemetry.EVENT_POINT_STARTED, ts=1.0, point=spec.points[1].key
        )
    )
    # The supervisor is now mid-append: half a record is flushed, no
    # newline yet.  A watcher reading concurrently must see every complete
    # record and skip the tail.
    journal._fh.write('{"key": "' + spec.points[1].key + '", "sta')
    journal._fh.flush()
    header, records, recs = Journal.load_full(path)
    assert header["campaign"] == spec.campaign_id()
    assert list(records) == [spec.points[0].key]
    assert [r["telemetry"] for r in recs] == ["point_started"]
    # The write completes; the next read sees the whole record.
    journal._fh.write('tus": "ok"}\n')
    journal._fh.flush()
    _header, records, _ = Journal.load_full(path)
    assert records[spec.points[1].key]["status"] == "ok"
    journal.close()


def test_load_full_ignores_flushed_tail_that_parses_as_json(tmp_path):
    # A flushed-but-unfinished tail can itself be valid JSON (e.g. a bare
    # number): completeness is the trailing newline, not parseability.
    path = tmp_path / "journal.jsonl"
    path.write_text(
        json.dumps({"campaign": "abc", "total_points": 1}) + "\n" + "123"
    )
    header, records, recs = Journal.load_full(path)
    assert header["campaign"] == "abc"
    assert records == {} and recs == []


# ----------------------------------------------------------------------
# status and watch
# ----------------------------------------------------------------------
def test_fleet_status_reports_elapsed_and_rate_from_timestamps(tmp_path):
    spec = small_validation_spec()
    run_fleet(spec, jobs=1, state_dir=tmp_path)
    status = fleet_status(tmp_path)
    assert "2/2 ok, 0 failed, complete" in status
    assert "elapsed" in status and "points/s" in status
    assert "completed 2, failed 0, pending 0" in status
    # Identical when asked again later: no live clock read on this path.
    assert fleet_status(tmp_path) == status


def test_fleet_status_without_telemetry_falls_back_to_counts(tmp_path):
    run_fleet(small_validation_spec(), jobs=1, state_dir=tmp_path,
              telemetry=False)
    status = fleet_status(tmp_path)
    assert "no telemetry timestamps journalled" in status
    assert "completed 2, failed 0, pending 0" in status


def test_fleet_status_telemetry_only_journal_prints_no_rate(tmp_path):
    # A campaign that was journalled and immediately killed: the header
    # and one telemetry marker exist, zero results.  Status must not
    # divide by zero or print a fantasy rate -- it says why instead.
    campaign_dir = tmp_path / "campaign-dead"
    campaign_dir.mkdir()
    from repro.obs.telemetry import EVENT_CAMPAIGN_STARTED, record

    (campaign_dir / "journal.jsonl").write_text(
        json.dumps({"campaign": "dead", "kind": "chaos", "total_points": 4})
        + "\n"
        + json.dumps(
            record(EVENT_CAMPAIGN_STARTED, ts=100.0, campaign="dead",
                   kind="chaos")
        )
        + "\n"
    )
    status = fleet_status(tmp_path)
    assert "0/4 ok" in status
    assert "telemetry window too narrow for a rate" in status
    assert "points/s" not in status


def test_fleet_watch_renders_finished_campaign_and_stops(tmp_path):
    spec = small_validation_spec()
    run_fleet(spec, jobs=1, state_dir=tmp_path)
    lines = []
    prog = fleet_watch(tmp_path, emit=lines.append)
    assert prog is not None and prog.finished
    assert len(lines) == 1  # finished campaign: one render, no tailing
    assert f"{spec.campaign_id()} [validation]" in lines[0]
    assert "2/2 done" in lines[0]
    assert "finished in" in lines[0]


def test_fleet_watch_honors_one_shot_and_max_updates(tmp_path):
    spec = small_validation_spec()
    path = journal_path(spec, tmp_path)
    journal = Journal.create(path, spec)  # campaign still "running"
    journal.record_telemetry(
        telemetry.record(telemetry.EVENT_CAMPAIGN_STARTED, ts=1.0,
                         campaign=spec.campaign_id(), kind=spec.kind)
    )
    journal.record_ok(spec.points[0], 1, {"agrees": True})
    journal.close()
    lines = []
    prog = fleet_watch(tmp_path, emit=lines.append, follow=False)
    assert prog is not None and not prog.finished
    assert len(lines) == 1 and "1/2 done" in lines[0]
    lines.clear()
    prog = fleet_watch(tmp_path, emit=lines.append, max_updates=2,
                       interval_s=0.01)
    assert len(lines) == 2


def test_fleet_watch_campaign_filter_and_empty_dir(tmp_path):
    assert fleet_watch(tmp_path / "nothing", emit=lambda _l: None) is None
    spec = small_validation_spec()
    run_fleet(spec, jobs=1, state_dir=tmp_path)
    lines = []
    assert fleet_watch(tmp_path, campaign="no-such-campaign",
                       emit=lines.append) is None
    assert "no campaign journal" in lines[0]
    prog = fleet_watch(tmp_path, campaign=spec.campaign_id()[:6],
                       emit=lambda _l: None)
    assert prog is not None and prog.finished
