"""Fleet supervision tests that spawn (and kill) real worker processes.

The golden property under test: ``jobs=1``, ``jobs=4``, a campaign whose
workers crash or hang mid-point, and a SIGKILLed-then-resumed campaign all
render byte-identical reports -- the merge is ordered by point key, never
by completion order, so supervision is invisible in the output.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.fleet import (
    Journal,
    RetryPolicy,
    chaos_fleet_spec,
    journal_path,
    run_fleet,
)
from repro.faults.workers import WorkerFaultSpec
from repro.obs import fleet_counts, fleetstats
from repro.sim.units import SEC

pytestmark = pytest.mark.fleet

REPO_ROOT = Path(__file__).resolve().parents[2]

RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, backoff_cap_s=0.1)


def spec():
    """4 points: 2 seeds x 2 profiles at one intensity, 1 s runs."""
    return chaos_fleet_spec([1, 2], duration_ns=1 * SEC, intensities=(1.0,))


@pytest.fixture(scope="module")
def serial_report(tmp_path_factory):
    """The jobs=1 reference render every supervised run must reproduce."""
    state = tmp_path_factory.mktemp("serial")
    result = run_fleet(spec(), jobs=1, state_dir=state)
    assert result.ok()
    return result.render()


def test_parallel_and_resumed_render_byte_identical(
    serial_report, tmp_path
):
    parallel = run_fleet(spec(), jobs=4, state_dir=tmp_path / "par")
    assert parallel.ok()
    assert parallel.render() == serial_report

    # Rewind the journal to header + first *result* record (as a kill
    # mid-campaign would leave it; telemetry records interleave with
    # results, so filter by the "key" field) and resume: same bytes again.
    path = journal_path(spec(), tmp_path / "par")
    all_lines = path.read_text().splitlines()
    lines = [all_lines[0]] + [
        line for line in all_lines[1:] if "key" in json.loads(line)
    ][:1]
    resumed_state = tmp_path / "resumed"
    repath = journal_path(spec(), resumed_state)
    repath.parent.mkdir(parents=True)
    repath.write_text("\n".join(lines) + "\n")
    resumed = run_fleet(
        spec(), jobs=2, state_dir=resumed_state, resume=True
    )
    assert resumed.ok()
    assert resumed.render() == serial_report
    counts = fleet_counts(resumed.registry)
    assert counts[fleetstats.POINTS_RESUMED] == 1
    assert counts[fleetstats.POINTS_DISPATCHED] == 3


def test_crashed_worker_costs_one_attempt(serial_report, tmp_path):
    fault = WorkerFaultSpec(
        kind="crash", seeds=(1,), profiles=("stock",), max_attempt=1
    )
    result = run_fleet(
        spec(),
        jobs=2,
        state_dir=tmp_path,
        retry=RETRY,
        worker_faults=fault,
    )
    assert result.ok()
    counts = fleet_counts(result.registry)
    assert counts[fleetstats.WORKERS_CRASHED] == 1
    assert counts[fleetstats.POINTS_RETRIED] == 1
    assert result.render() == serial_report


def test_hung_worker_is_killed_and_point_retried(serial_report, tmp_path):
    fault = WorkerFaultSpec(
        kind="hang",
        seeds=(2,),
        profiles=("ctmsp",),
        max_attempt=1,
        hang_s=120.0,
    )
    result = run_fleet(
        spec(),
        jobs=2,
        state_dir=tmp_path,
        retry=RETRY,
        point_timeout_s=2.0,
        worker_faults=fault,
    )
    assert result.ok()
    counts = fleet_counts(result.registry)
    assert counts[fleetstats.POINTS_TIMED_OUT] == 1
    assert counts[fleetstats.WORKERS_KILLED] == 1
    assert counts[fleetstats.POINTS_RETRIED] == 1
    assert result.render() == serial_report


# ----------------------------------------------------------------------
# whole-supervisor kills, through the CLI
# ----------------------------------------------------------------------
def cli_command(state_dir, *extra, seeds=2):
    return [
        sys.executable, "-m", "repro", "chaos",
        "--jobs", "2", "--seeds", str(seeds), "--seconds", "1",
        "--intensities", "1.0", "--state-dir", str(state_dir), *extra,
    ]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def wait_for_ok_record(path: Path, deadline_s: float = 60.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if path.is_file() and '"status":"ok"' in path.read_text():
            return
        time.sleep(0.05)
    raise AssertionError(f"no journalled point within {deadline_s}s")


def test_resume_after_sigkill_matches_serial(tmp_path):
    state = tmp_path / "state"
    journal = journal_path(spec(), state)
    # Own process group so the SIGKILL takes the workers down too.
    proc = subprocess.Popen(
        cli_command(state),
        cwd=REPO_ROOT,
        env=cli_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        wait_for_ok_record(journal)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # the campaign beat us to the kill; resume still works
        proc.wait(timeout=30)

    serial = subprocess.run(
        [
            sys.executable, "-m", "repro", "chaos",
            "--jobs", "1", "--seeds", "2", "--seconds", "1",
            "--intensities", "1.0", "--state-dir", str(tmp_path / "ref"),
        ],
        cwd=REPO_ROOT, env=cli_env(), capture_output=True, timeout=300,
    )
    assert serial.returncode == 0
    resumed = subprocess.run(
        cli_command(state, "--resume"),
        cwd=REPO_ROOT, env=cli_env(), capture_output=True, timeout=300,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == serial.stdout
    # Nothing journalled before the kill was recomputed.
    _header, records = Journal.load(journal)
    assert len(records) == len(spec().points)


def test_sigint_flushes_journal_and_prints_resume_command(tmp_path):
    # 8 points: enough runway that the SIGINT lands mid-campaign.
    big = chaos_fleet_spec([1, 2, 3, 4], duration_ns=1 * SEC, intensities=(1.0,))
    state = tmp_path / "state"
    journal = journal_path(big, state)
    proc = subprocess.Popen(
        cli_command(state, seeds=4),
        cwd=REPO_ROOT,
        env=cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        start_new_session=True,
    )
    try:
        wait_for_ok_record(journal)
        os.killpg(proc.pid, signal.SIGINT)
        _stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
    assert proc.returncode == 130, stderr
    text = stderr.decode()
    assert "resume with: python -m repro chaos" in text
    assert "--resume" in text
    # The journal the message promises is really there and loadable.
    header, records = Journal.load(journal)
    assert header["campaign"] == big.campaign_id()
    assert any(r.get("status") == "ok" for r in records.values())


def test_failover_campaign_parallel_matches_serial(tmp_path):
    # The acceptance property for the control-plane scenario: the failover
    # fleet renders byte-identically whether its points ran serially or
    # sharded over the worker pool.
    from repro.experiments.fleet import failover_fleet_spec

    fspec = failover_fleet_spec([1, 2], duration_ns=2 * SEC)
    serial = run_fleet(fspec, jobs=1, state_dir=tmp_path / "ser")
    parallel = run_fleet(fspec, jobs=4, state_dir=tmp_path / "par")
    assert serial.ok() and parallel.ok()
    assert parallel.render() == serial.render()
    assert "admitted sessions surviving:" in serial.render()
