"""Tests for the Section 5.2.1 campaign controller (halt on anomaly)."""

import pytest

from repro.core.session import CTMSSession
from repro.experiments.controller import (
    LONG_INTERVAL,
    LOST_PACKET,
    CampaignController,
    Snapshot,
)
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim.units import MS, SEC


def build(halt=True, max_interarrival=40 * MS, seed=15):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    controller = CampaignController(
        bed, tx, rx, session,
        max_interarrival=max_interarrival,
        halt_on_anomaly=halt,
    )
    return bed, tx, rx, session, controller


def test_clean_run_never_trips():
    bed, tx, rx, session, controller = build()
    bed.run(5 * SEC)
    assert controller.snapshot is None
    assert not controller.halted
    assert session.stats.delivered > 400


def test_lost_packet_halts_and_snapshots():
    bed, tx, rx, session, controller = build()
    bed.run(500 * MS)
    # Purge the ring mid-flight to destroy one CTMSP packet (the wire
    # window for each 12ms period is ~6-10ms in; sweep the phase).
    for k in range(3):
        bed.sim.schedule(11 * MS + k * 12 * MS, bed.ring.purge)
    bed.run(2 * SEC)
    assert controller.halted
    snap = controller.snapshot
    assert snap is not None
    # The purge produces either a lost packet (gap at rx) or a long
    # inter-arrival stall; both are the paper's halt triggers.
    assert snap.anomaly in (LOST_PACKET, LONG_INTERVAL)
    # The stream was halted: deliveries stop shortly after.
    delivered = session.stats.delivered
    bed.run(1 * SEC)
    assert session.stats.delivered <= delivered + 2


def test_snapshot_carries_the_debugging_context():
    bed, tx, rx, session, controller = build()
    bed.run(500 * MS)
    for k in range(3):
        bed.sim.schedule(11 * MS + k * 12 * MS, bed.ring.purge)
    bed.run(2 * SEC)
    snap = controller.snapshot
    assert snap is not None
    assert snap.recent_events  # the rolling window was captured
    assert {"tx", "rx"} <= {e.point for e in snap.recent_events}
    assert snap.ring_stats["purges"] >= 1
    assert snap.transmitter_stats["tx_packets"] > 0
    text = snap.render()
    assert "SNAPSHOT" in text
    assert "recent events" in text


def test_monitoring_mode_records_without_halting():
    bed, tx, rx, session, controller = build(halt=False)
    bed.run(500 * MS)
    for k in range(3):
        bed.sim.schedule(11 * MS + k * 12 * MS, bed.ring.purge)
    bed.run(3 * SEC)
    assert controller.snapshot is not None
    assert not controller.halted
    # Stream kept going.
    assert session.stats.delivered > 200


def test_long_interval_threshold_trips_on_outage():
    bed, tx, rx, session, controller = build(max_interarrival=30 * MS)
    bed.run(500 * MS)
    # A 10-purge burst: ~100ms of dead ring.
    for i in range(10):
        bed.sim.schedule(i * 10 * MS, bed.ring.purge)
    bed.run(2 * SEC)
    snap = controller.snapshot
    assert snap is not None
    assert snap.anomaly in (LONG_INTERVAL, LOST_PACKET)


def test_event_window_is_bounded():
    bed, tx, rx, session, controller = build()
    bed.run(10 * SEC)
    assert len(controller.events) <= 64
