"""Fleet unit tests: specs, journal, retry policy, and the serial path.

Everything here stays in-process (``jobs=1``); the tests that spawn,
crash, hang, and SIGKILL real worker processes live in
``test_fleet_procs.py`` behind the ``fleet`` marker.
"""

import json

import pytest

from repro.experiments import chaos, fleet
from repro.experiments.chaos import ChaosPointError, build_plan, run_one
from repro.experiments.fleet import (
    FleetInterrupted,
    FleetPoint,
    FleetSpec,
    Journal,
    RetryPolicy,
    ablation_fleet_spec,
    chaos_fleet_spec,
    fleet_status,
    journal_path,
    run_fleet,
    validation_fleet_spec,
)
from repro.faults.workers import WorkerFaultSpec
from repro.obs import fleet_counts, fleet_summary, fleetstats
from repro.sim.units import SEC


def small_validation_spec(seeds=(3, 4)):
    return validation_fleet_spec(list(seeds), n_frames=12)


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
def test_chaos_spec_is_deterministic_and_ordered():
    a = chaos_fleet_spec([1, 2], duration_ns=1 * SEC, intensities=(0.5, 1.0))
    b = chaos_fleet_spec([1, 2], duration_ns=1 * SEC, intensities=(0.5, 1.0))
    assert [p.key for p in a.points] == [p.key for p in b.points]
    assert a.campaign_id() == b.campaign_id()
    # 2 intensities x 2 seeds x 2 profiles, intensity-major order.
    assert len(a.points) == 8
    assert [p.params["intensity"] for p in a.points] == [0.5] * 4 + [1.0] * 4
    for point in a.points:
        plan_hash = build_plan(
            point.seed, point.params["intensity"], 1 * SEC
        ).stable_hash()
        assert point.task_hash == f"{plan_hash}.{point.profile}"
        assert point.key == f"{point.task_hash}:{point.seed}"
        assert "--intensities" in point.replay


def test_spec_kinds_have_distinct_campaigns():
    ids = {
        chaos_fleet_spec([1], duration_ns=1 * SEC).campaign_id(),
        ablation_fleet_spec(1 * SEC).campaign_id(),
        small_validation_spec().campaign_id(),
    }
    assert len(ids) == 3


def test_duplicate_point_keys_rejected():
    point = FleetPoint(
        kind="validation", key="k:1", task_hash="k", seed=1,
        params={}, label="x", replay="x",
    )
    with pytest.raises(ValueError, match="duplicate"):
        FleetSpec(kind="validation", points=[point, point])


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fleet kind"):
        FleetSpec(kind="voyage", points=[])


# ----------------------------------------------------------------------
# retry policy (the establish() backoff shape)
# ----------------------------------------------------------------------
def test_backoff_doubles_to_a_cap():
    policy = RetryPolicy(max_attempts=5, backoff_s=0.05, backoff_cap_s=0.2)
    assert [policy.backoff_for(n) for n in (1, 2, 3, 4)] == [
        0.05,
        0.1,
        0.2,
        0.2,
    ]


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=0.0)


# ----------------------------------------------------------------------
# worker fault specs (inert data; machinery applied only by the fleet)
# ----------------------------------------------------------------------
def test_worker_fault_matching():
    fault = WorkerFaultSpec(
        kind="crash", seeds=(1, 2), profiles=("stock",), max_attempt=2
    )
    assert fault.matches(1, "stock", 1)
    assert fault.matches(2, "stock", 2)
    assert not fault.matches(3, "stock", 1)  # wrong seed
    assert not fault.matches(1, "ctmsp", 1)  # wrong profile
    assert not fault.matches(1, "stock", 3)  # past the attempt budget


def test_worker_fault_wildcards_and_round_trip():
    fault = WorkerFaultSpec(kind="hang", hang_s=1.5)
    assert fault.matches(99, "anything", 1)
    assert WorkerFaultSpec.from_dict(fault.as_dict()) == fault
    with pytest.raises(ValueError):
        WorkerFaultSpec(kind="meltdown")


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
def test_journal_round_trip(tmp_path):
    spec = small_validation_spec()
    path = journal_path(spec, tmp_path)
    journal = Journal.create(path, spec)
    journal.record_ok(spec.points[0], 1, {"agrees": True})
    journal.record_failed(spec.points[1], 3, "boom")
    journal.close()
    header, records = Journal.load(path)
    assert header["campaign"] == spec.campaign_id()
    assert header["total_points"] == 2
    assert records[spec.points[0].key]["status"] == "ok"
    assert records[spec.points[0].key]["result"] == {"agrees": True}
    failed = records[spec.points[1].key]
    assert failed["status"] == "failed"
    assert failed["error"] == "boom"
    assert failed["replay"] == spec.points[1].replay


def test_journal_skips_torn_tail_and_keeps_last_writer(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(
        json.dumps({"campaign": "abc", "total_points": 2}) + "\n"
        + json.dumps({"key": "k:1", "status": "failed"}) + "\n"
        + json.dumps({"key": "k:1", "status": "ok"}) + "\n"
        + '{"key": "k:2", "status":'  # torn mid-write by a SIGKILL
    )
    header, records = Journal.load(path)
    assert header["campaign"] == "abc"
    assert list(records) == ["k:1"]
    assert records["k:1"]["status"] == "ok"  # last writer wins


def test_torn_tail_inside_a_multibyte_utf8_sequence(tmp_path):
    # A SIGKILL can land mid-character, not just mid-record: the tail below
    # ends one byte into the two-byte encoding of U+00E9.  A text-mode
    # reader raises UnicodeDecodeError on the whole file; the loader must
    # instead skip only the torn line and keep every complete record.
    path = tmp_path / "journal.jsonl"
    good = json.dumps({"campaign": "abc", "total_points": 2}) + "\n"
    good += json.dumps({"key": "k:1", "status": "ok", "note": "café"}) + "\n"
    torn = '{"key": "k:2", "note": "café'.encode("utf-8")[:-1]
    path.write_bytes(good.encode("utf-8") + torn)
    header, records = Journal.load(path)
    assert header["campaign"] == "abc"
    assert list(records) == ["k:1"]
    assert records["k:1"]["note"] == "café"


def test_torn_multibyte_line_mid_file_skips_only_itself(tmp_path):
    # Same wound, but with a newline after it and complete records on both
    # sides (a concurrent writer recovered): the later records must load.
    path = tmp_path / "journal.jsonl"
    blob = json.dumps({"campaign": "abc", "total_points": 2}).encode() + b"\n"
    blob += '{"key": "k:1", "note": "café'.encode("utf-8")[:-1] + b"\n"
    blob += json.dumps({"key": "k:2", "status": "ok"}).encode() + b"\n"
    path.write_bytes(blob)
    header, records = Journal.load(path)
    assert header["campaign"] == "abc"
    assert list(records) == ["k:2"]


def test_append_after_torn_tail_starts_a_fresh_line(tmp_path):
    spec = small_validation_spec()
    path = tmp_path / "journal.jsonl"
    path.write_text(
        json.dumps({"campaign": spec.campaign_id()}) + "\n" + '{"key": "torn'
    )
    journal = Journal.append_to(path)
    journal.record_ok(spec.points[0], 1, {"agrees": True})
    journal.close()
    _header, records = Journal.load(path)
    assert records[spec.points[0].key]["status"] == "ok"


# ----------------------------------------------------------------------
# the serial reference path
# ----------------------------------------------------------------------
def test_serial_validation_fleet(tmp_path):
    spec = small_validation_spec()
    result = run_fleet(spec, jobs=1, state_dir=tmp_path)
    assert result.ok()
    assert "agreement: 2/2 seeds" in result.render()
    assert result.journal.is_file()
    counts = fleet_counts(result.registry)
    assert counts[fleetstats.POINTS_DISPATCHED] == 2
    assert counts[fleetstats.POINTS_COMPLETED] == 2
    assert "dispatched 2, completed 2" in fleet_summary(result.registry)


def test_transient_fault_is_retried_to_success(tmp_path):
    fault = WorkerFaultSpec(kind="fail", seeds=(3,), max_attempt=1)
    result = run_fleet(
        small_validation_spec(),
        jobs=1,
        state_dir=tmp_path,
        retry=RetryPolicy(max_attempts=3, backoff_s=0.001),
        worker_faults=fault,
    )
    assert result.ok()
    assert "FAILED POINTS" not in result.render()
    counts = fleet_counts(result.registry)
    assert counts[fleetstats.POINTS_RETRIED] == 1
    key = next(p.key for p in result.spec.points if p.seed == 3)
    assert result.results[key]["attempts"] == 2


def test_exhausted_retries_degrade_gracefully(tmp_path):
    fault = WorkerFaultSpec(kind="fail", seeds=(3,), max_attempt=99)
    spec = small_validation_spec()
    result = run_fleet(
        spec,
        jobs=1,
        state_dir=tmp_path,
        retry=RetryPolicy(max_attempts=2, backoff_s=0.001),
        worker_faults=fault,
    )
    assert not result.ok()
    text = result.render()
    # The survivor still renders; the failure is explicit and replayable.
    assert "agreement: 1/1 seeds" in text
    assert "FAILED POINTS (1)" in text
    failed_point = next(p for p in spec.points if p.seed == 3)
    assert failed_point.replay in text
    counts = fleet_counts(result.registry)
    assert counts[fleetstats.POINTS_FAILED] == 1
    assert result.failures[failed_point.key]["attempts"] == 2


def test_resume_skips_journalled_points(tmp_path):
    spec = small_validation_spec()
    first = run_fleet(spec, jobs=1, state_dir=tmp_path)
    resumed = run_fleet(
        small_validation_spec(), jobs=1, state_dir=tmp_path, resume=True
    )
    counts = fleet_counts(resumed.registry)
    assert counts[fleetstats.POINTS_RESUMED] == 2
    assert counts[fleetstats.POINTS_DISPATCHED] == 0
    assert resumed.render() == first.render()


def test_resume_rejects_foreign_journal(tmp_path):
    spec_a = small_validation_spec(seeds=(3, 4))
    spec_b = small_validation_spec(seeds=(5, 6))
    run_fleet(spec_a, jobs=1, state_dir=tmp_path)
    path_b = journal_path(spec_b, tmp_path)
    path_b.parent.mkdir(parents=True)
    path_b.write_bytes(journal_path(spec_a, tmp_path).read_bytes())
    with pytest.raises(ValueError, match="belongs to campaign"):
        run_fleet(spec_b, jobs=1, state_dir=tmp_path, resume=True)


def test_interrupt_flushes_journal_and_carries_resume_hint(
    tmp_path, monkeypatch
):
    spec = small_validation_spec()
    real_runner = fleet._POINT_RUNNERS["validation"]
    calls = []

    def interrupting(params):
        calls.append(params["seed"])
        if len(calls) == 2:
            raise KeyboardInterrupt
        return real_runner(params)

    monkeypatch.setitem(fleet._POINT_RUNNERS, "validation", interrupting)
    with pytest.raises(FleetInterrupted) as excinfo:
        run_fleet(
            spec, jobs=1, state_dir=tmp_path, resume_hint="repro ... --resume"
        )
    intr = excinfo.value
    assert isinstance(intr, KeyboardInterrupt)
    assert (intr.completed, intr.total) == (1, 2)
    assert intr.resume_hint == "repro ... --resume"
    # The completed point survived the interrupt on disk...
    _header, records = Journal.load(intr.journal)
    assert len(records) == 1
    # ...and a resumed run finishes without redoing it.
    monkeypatch.setitem(fleet._POINT_RUNNERS, "validation", real_runner)
    resumed = run_fleet(
        small_validation_spec(), jobs=1, state_dir=tmp_path, resume=True
    )
    assert resumed.ok()
    assert fleet_counts(resumed.registry)[fleetstats.POINTS_DISPATCHED] == 1


# ----------------------------------------------------------------------
# worker exception context (satellite: errors name (plan_hash, seed))
# ----------------------------------------------------------------------
def test_chaos_point_error_names_replay_coordinates(monkeypatch):
    def explode(*args, **kwargs):
        raise RuntimeError("testbed wiring failed")

    monkeypatch.setattr(chaos, "Testbed", explode)
    plan = build_plan(seed=7, intensity=1.0, duration_ns=1 * SEC)
    with pytest.raises(ChaosPointError) as excinfo:
        run_one("ctmsp", plan, 7, 1 * SEC, intensity=1.0)
    err = excinfo.value
    assert err.plan_hash == plan.stable_hash()
    assert (err.seed, err.profile, err.intensity) == (7, "ctmsp", 1.0)
    assert f"plan {plan.stable_hash()}, seed 7" in str(err)
    assert isinstance(err.__cause__, RuntimeError)


def test_chaos_point_error_reaches_the_failure_report(tmp_path, monkeypatch):
    def explode(*args, **kwargs):
        raise RuntimeError("testbed wiring failed")

    monkeypatch.setattr(chaos, "Testbed", explode)
    spec = chaos_fleet_spec([7], duration_ns=1 * SEC, intensities=(1.0,))
    result = run_fleet(
        spec,
        jobs=1,
        state_dir=tmp_path,
        retry=RetryPolicy(max_attempts=1, backoff_s=0.001),
    )
    assert not result.ok()
    text = result.render()
    plan_hash = build_plan(7, 1.0, 1 * SEC).stable_hash()
    assert f"plan {plan_hash}, seed 7" in text
    assert "--seed 7" in text  # the replay command rides along


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------
def test_fleet_status(tmp_path):
    empty = fleet_status(tmp_path / "nowhere")
    assert "nothing journalled yet" in empty
    result = run_fleet(small_validation_spec(), jobs=1, state_dir=tmp_path)
    status = fleet_status(tmp_path)
    assert f"campaign-{result.spec.campaign_id()}" in status
    assert "2/2 ok, 0 failed, complete" in status
