"""Tests for the failover chaos campaign: golden lock, determinism,
observe-only guard, acceptance claims, and the fleet wiring.

The golden pins the whole causal chain -- churn admission, the mid-run
crash of ``server-a``, stall detection, re-placement on the hot spare,
and the resume splice at the sequence high-water mark -- to exact bytes.
Any drift means a seed no longer replays the campaign.
"""

import pytest

from repro.experiments.failover import (
    CONTROL_SLOTS_PER_SERVER,
    FAILOVER_GAP_BUDGET_NS,
    MODES,
    SERVERS,
    build_churn,
    build_crash_plan,
    run_failover_campaign,
    run_failover_one,
)
from repro.experiments.fleet import (
    Journal,
    failover_fleet_spec,
    journal_path,
    run_fleet,
)
from repro.obs.controlstats import ControlPlaneMetrics
from repro.sim.units import MS, SEC

GOLDEN_REPORT = """\
Failover chaos: identical churn + server crash vs control modes
seed 1, 3.000 s per run, crash at 1.500 s, glitch budget 600 ms

mode none  (plan 4405946d80cb)
  client-1   admit   delivered    52  lost   39  failovers 0  VIOLATED: inter_arrival, loss_fraction
  client-2   admit   delivered    50  lost   47  failovers 0  VIOLATED: loss_fraction, inter_arrival
  client-3   admit   delivered    19  lost   71  failovers 0  VIOLATED: inter_arrival
  client-4   admit   delivered     9  lost   89  failovers 0  VIOLATED: inter_arrival

mode admission  (plan 4405946d80cb)
  client-1   admit   delivered   124  lost    0  failovers 0  VIOLATED: inter_arrival
  client-2   admit   delivered   248  lost    0  failovers 0  survived
  client-3   queue   delivered     0  lost    0  failovers 0  queued
  client-4   queue   delivered     0  lost    0  failovers 0  queued
  control: admitted 2 queued 2 rejected 0 failovers 0 stranded 0

mode failover  (plan 4405946d80cb)
  client-1   admit   delivered   236  lost    0  failovers 1  survived
  client-2   admit   delivered   240  lost    0  failovers 0  survived
  client-3   queue   delivered     0  lost    0  failovers 0  queued
  client-4   queue   delivered     0  lost    0  failovers 0  queued
  control: admitted 2 queued 2 rejected 0 failovers 1 stranded 0

admitted sessions surviving the crash: none 0/4, admission 1/2, failover 2/2"""


# ----------------------------------------------------------------------
# scenario shape
# ----------------------------------------------------------------------
def test_scenario_has_a_hot_spare():
    # Three replicas, one stream each: a single station cannot source two
    # 167 KB/s streams inside the 12 ms period, so failover capacity must
    # come from a spare station, not a spare slot.
    assert len(SERVERS) == 3
    assert CONTROL_SLOTS_PER_SERVER == 1


def test_churn_and_plan_are_content_addressed():
    assert (
        build_churn(3 * SEC).stable_hash()
        == build_churn(3 * SEC).stable_hash()
    )
    assert (
        build_crash_plan(3 * SEC).stable_hash()
        == build_crash_plan(3 * SEC).stable_hash()
    )
    assert len(build_crash_plan(3 * SEC)) == 1  # one crash, nothing else


# ----------------------------------------------------------------------
# the golden lock and the acceptance claims
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_campaign_report_matches_golden():
    report = run_failover_campaign(seed=1, duration_ns=3 * SEC)
    assert report.render() == GOLDEN_REPORT


@pytest.mark.chaos
def test_campaign_is_deterministic():
    a = run_failover_campaign(seed=1, duration_ns=3 * SEC)
    b = run_failover_campaign(seed=1, duration_ns=3 * SEC)
    assert a.render() == b.render()


@pytest.mark.chaos
def test_failover_mode_saves_every_admitted_session():
    """The acceptance claim: >= 90% of admitted sessions survive the
    mid-campaign crash with failover on; with no control plane, none do."""
    report = run_failover_campaign(seed=1, duration_ns=3 * SEC)
    none = report.run_for("none")
    failover = report.run_for("failover")
    assert none.survived_count() == 0
    admitted = failover.admitted()
    assert admitted
    assert failover.survived_count() / len(admitted) >= 0.9
    # And the save was honest: a bounded glitch, not a silent restart.
    crashed = [s for s in admitted if s.failovers > 0]
    assert crashed
    for s in crashed:
        assert s.failovers <= 1
        assert not s.violated


@pytest.mark.chaos
def test_failover_gap_budget_is_the_documented_600ms():
    assert FAILOVER_GAP_BUDGET_NS == 600 * MS


# ----------------------------------------------------------------------
# observe-only guard
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_control_metrics_are_observe_only():
    bare = run_failover_one("failover", seed=1, duration_ns=3 * SEC)
    metrics = ControlPlaneMetrics()
    observed = run_failover_one(
        "failover", seed=1, duration_ns=3 * SEC, observer=metrics
    )
    # Not one extra simulation event, identical outcomes...
    assert observed.events == bare.events
    assert observed.as_dict() == bare.as_dict()
    # ...and yet the observer saw the whole story.
    assert metrics.decision_counts()["admit"] == 2
    assert "control" in metrics.render()


# ----------------------------------------------------------------------
# serialization and the fleet wiring
# ----------------------------------------------------------------------
def test_run_roundtrips_through_dict():
    from repro.experiments.failover import FailoverRun

    run = run_failover_one("none", seed=1, duration_ns=2 * SEC)
    clone = FailoverRun.from_dict(run.as_dict())
    assert clone.as_dict() == run.as_dict()
    assert clone.survival_line() == run.survival_line()


def test_fleet_spec_enumerates_mode_by_seed():
    spec = failover_fleet_spec([1, 2], duration_ns=3 * SEC)
    assert spec.kind == "failover"
    assert len(spec.points) == 2 * len(MODES)
    labels = {p.label for p in spec.points}
    assert "failover mode failover seed 2" in labels
    for p in spec.points:
        assert "--scenario failover" in p.replay
    # Same inputs -> same campaign identity (what --resume keys on).
    assert (
        spec.campaign_id()
        == failover_fleet_spec([1, 2], duration_ns=3 * SEC).campaign_id()
    )


@pytest.mark.chaos
def test_failover_fleet_runs_and_renders(tmp_path):
    spec = failover_fleet_spec([1], duration_ns=3 * SEC, modes=("failover",))
    result = run_fleet(spec, jobs=1, state_dir=tmp_path)
    assert result.ok()
    rendered = result.render()
    assert "Fleet failover chaos" in rendered
    assert "admitted sessions surviving: failover 2/2" in rendered
    # The journal alone can reconstruct the render (what --resume relies on).
    _header, records = Journal.load(journal_path(spec, tmp_path))
    assert all(
        records[p.key]["status"] == "ok" for p in spec.points
    )
