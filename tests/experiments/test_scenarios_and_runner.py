"""Tests for scenario definitions, the testbed, and the runner plumbing."""

import pytest

from repro.experiments.runner import (
    CH_HANDLER_ENTRY,
    CH_PRE_TRANSMIT,
    CH_RX_CLASSIFIED,
    CH_VCA_IRQ,
    HISTOGRAM_NAMES,
    run_scenario,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.scenarios import test_case_a as scenario_a
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim.units import MS, SEC


def test_test_case_a_matches_the_paper_description():
    s = scenario_a()
    assert s.tx_use_io_channel_memory  # "uses IO Channel Memory"
    assert not s.tx_copy_vca_data_to_mbufs  # "does not copy data from VCA"
    assert s.rx_copy_to_mbufs  # "copies data from fixed DMA buffer into mbufs"
    assert not s.rx_copy_to_device  # "does not copy data ... into the VCA"
    assert s.driver_priority_queueing and s.ctmsp_ring_priority > 0
    assert s.private_network and not s.multiprogramming
    assert s.background_load == 0.0


def test_test_case_b_matches_the_paper_description():
    s = scenario_b()
    assert s.tx_use_io_channel_memory
    assert s.tx_copy_vca_data_to_mbufs  # "full copying"
    assert s.rx_copy_to_mbufs and s.rx_copy_to_device
    assert not s.private_network and s.multiprogramming
    assert s.background_load > 0


def test_variant_flips_one_switch():
    base = scenario_b()
    v = base.variant("noprio", driver_priority_queueing=False)
    assert not v.driver_priority_queueing
    assert v.multiprogramming == base.multiprogramming
    assert v.name.endswith("/noprio")


def test_scenario_builds_driver_configs():
    s = scenario_b()
    tx_tr, tx_vca = s.transmitter_config()
    rx_tr, rx_vca = s.receiver_config()
    assert tx_tr.use_io_channel_memory
    assert tx_vca.copy_vca_data_to_mbufs
    assert rx_vca.sink_copy_to_device
    assert rx_tr.rx_copy_to_mbufs


def test_runner_histogram_wiring():
    result = run_scenario(scenario_a(duration_ns=3 * SEC, seed=9))
    h = result.histograms
    assert set(h) == set(range(1, 8))
    for i, hist in h.items():
        assert hist.name == HISTOGRAM_NAMES[i]
    # ~250 packets in 3 seconds; every channel saw them all.
    assert h[1].count >= 240
    assert abs(h[1].count - h[4].count) <= 3
    # Per-packet difference histograms pair up almost everything.
    assert h[5].count >= h[1].count - 2
    assert h[7].count >= h[4].count - 2


def test_runner_channel_constants_distinct():
    assert len({CH_VCA_IRQ, CH_HANDLER_ENTRY, CH_PRE_TRANSMIT, CH_RX_CLASSIFIED}) == 4


def test_runner_with_tap():
    result = run_scenario(
        scenario_a(duration_ns=2 * SEC, seed=9), with_tap=True
    )
    assert result.tap is not None
    assert result.tap.ctmsp_records()


def test_testbed_rejects_duplicate_hosts():
    bed = _Testbed(seed=0)
    bed.add_host(HostConfig(name="x"))
    with pytest.raises(ValueError):
        bed.add_host(HostConfig(name="x"))


def test_testbed_environment_starts_once():
    bed = _Testbed(seed=0, mac_utilization=0.002)
    bed.add_host(HostConfig(name="x"))
    bed.add_host(HostConfig(name="y"))
    bed.run(1 * SEC)
    frames = bed.monitor.stats_mac_frames
    assert frames > 0
    bed.run(1 * SEC)
    assert bed.monitor.stats_mac_frames > frames


def test_host_without_iocm_card():
    from repro.drivers.token_ring import TokenRingDriverConfig

    bed = _Testbed(seed=0)
    host = bed.add_host(
        HostConfig(
            name="stock",
            has_io_channel_memory=False,
            tr=TokenRingDriverConfig(use_io_channel_memory=False),
        )
    )
    assert not host.machine.memory.has_io_channel_memory
