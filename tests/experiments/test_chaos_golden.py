"""Golden-report lock on the chaos campaign's seeded output.

PR 2 moved plan RNG construction from a bare ``random.Random`` in
``experiments/chaos.py`` to :func:`repro.sim.rng.seeded_stream` (the
lint-compliant constructor).  The refactor must be invisible: this report
was captured from the pre-refactor implementation, and any drift in it
means a seed no longer replays the campaign byte-for-byte.
"""

import pytest

from repro.experiments.chaos import build_plan, plan_seed, run_campaign
from repro.sim.rng import seeded_stream
from repro.sim.units import SEC

GOLDEN_REPORT = """\
Chaos survival: identical fault plans vs stock and CTMSP
seed 7, 2.000 s per run, invariants: loss <= 1.00%, gap <= 150 ms, >= 150.0 KB/s

intensity 1.00  (4 fault events)
  stock  delivered   155  lost    3   157.4 KB/s  survived
  ctmsp  delivered   155  lost    3   157.4 KB/s  survived

survived: stock 1/1, ctmsp 1/1"""


@pytest.mark.chaos
def test_campaign_report_matches_pre_refactor_golden():
    report = run_campaign(seed=7, duration_ns=2 * SEC, intensities=(1.0,))
    assert report.render() == GOLDEN_REPORT


def test_seeded_stream_matches_legacy_constructor():
    """seeded_stream(s) must replay random.Random(s) draw-for-draw."""
    import random  # the legacy spelling, quarantined to this test

    legacy = random.Random(plan_seed(7, 1.0))
    stream = seeded_stream(plan_seed(7, 1.0))
    assert [legacy.random() for _ in range(32)] == [
        stream.random() for _ in range(32)
    ]


def test_plan_is_stable_across_builds():
    a = build_plan(seed=7, intensity=1.0, duration_ns=2 * SEC)
    b = build_plan(seed=7, intensity=1.0, duration_ns=2 * SEC)
    assert a.describe() == b.describe()
