"""Tests for the report formatting helpers."""

import os

import pytest

from repro.experiments import reporting
from repro.measure.histogram import Histogram
from repro.sim.units import MS, US


def test_format_table_aligns_columns():
    text = reporting.format_table(
        "Title", ["a", "bb"], [["1", "2"], ["333", "4"]]
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "a" in lines[2] and "bb" in lines[2]
    # All data rows are equally wide (padded).
    assert len(lines[4]) == len(lines[5]) or lines[4].rstrip() != lines[5].rstrip()


def test_emit_writes_results_file(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
    reporting.emit("unit_test_report", "hello world")
    out = capsys.readouterr().out
    assert "hello world" in out
    assert (tmp_path / "unit_test_report.txt").read_text() == "hello world\n"


def make_h7(n=1000, mean_us=10_800):
    import random

    rng = random.Random(0)
    return Histogram(
        [round(rng.gauss(mean_us, 50)) * US for _ in range(n)], name="h7"
    )


def test_figure_5_3_report_mentions_paper_numbers():
    text = reporting.figure_5_3_report(make_h7())
    assert "10740us" in text
    assert "10894us" in text
    assert "98%" in text
    assert "histogram 7" in text


def test_figure_5_2_report_structure():
    import random

    rng = random.Random(1)
    samples = [round(rng.gauss(2600, 150)) * US for _ in range(680)]
    samples += [round(rng.gauss(9400, 300)) * US for _ in range(150)]
    samples += [round(rng.uniform(3000, 9000)) * US for _ in range(170)]
    text = reporting.figure_5_2_report(Histogram(samples, name="h6"))
    assert "68%" in text and "15%" in text and "16.5%" in text
    assert "within 500us of 2600us" in text


def test_figure_5_4_report_counts_outliers():
    h = make_h7()
    h.add(120 * MS)
    h.add(128 * MS)
    text = reporting.figure_5_4_report(h, insertions=2, duration_min=6.0)
    assert "2 in 6 min (2 insertions)" in text
    assert "10750us" in text


def test_histogram_summary_table_handles_empty():
    text = reporting.histogram_summary_table(
        {1: Histogram(name="empty-one")}, "Case X"
    )
    assert "empty-one" in text
    assert "Case X" in text
