"""Calibration pinning: the DERIVED constants against the PAPER numbers.

These tests are the contract promised in
:mod:`repro.hardware.calibration`: change a derived constant and the
end-to-end budget test that depends on it fails, naming the paper figure
you broke.  Durations are kept short; the quantities checked here are
floors and means that stabilize within seconds of simulated time.
"""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_a as scenario_a
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.hardware import calibration
from repro.sim.units import MS, SEC, US


@pytest.fixture(scope="module")
def case_a():
    return run_scenario(scenario_a(duration_ns=12 * SEC, seed=1))


@pytest.fixture(scope="module")
def case_b():
    return run_scenario(scenario_b(duration_ns=20 * SEC, seed=1))


def test_paper_constants_are_verbatim():
    """The PAPER-tagged constants must never drift from the text."""
    assert calibration.TOKEN_RING_BIT_RATE == 4_000_000
    assert calibration.TOKEN_RING_DEFAULT_STATIONS == 70
    assert calibration.VCA_INTERRUPT_PERIOD == 12 * MS
    assert calibration.CTMSP_PACKET_BYTES == 2000
    assert calibration.CPU_COPY_SYS_TO_IOCM_NS_PER_BYTE == 1000  # 1 us/byte
    assert calibration.RTPC_CLOCK_GRANULARITY == 122 * US
    assert calibration.PCAT_CLOCK_RESOLUTION == 2 * US
    assert calibration.PCAT_LOOP_WORST_CASE == 60 * US
    assert calibration.PCAT_EXPECTED_SPREAD == 120 * US
    assert calibration.RING_INSERTIONS_PER_DAY == 20
    assert calibration.MAC_TRAFFIC_UTILIZATION_LOW == 0.002
    assert calibration.MAC_TRAFFIC_UTILIZATION_HIGH == 0.010


def test_wire_time_of_the_ctmsp_packet():
    """2000 info bytes + 21 framing bytes at 4 Mbit/s = 4042 us."""
    from repro.ring.frames import wire_time_ns

    assert wire_time_ns(2000) == 4042 * US


def test_figure_5_3_minimum_budget(case_a):
    """Test A point-3-to-point-4 floor: the paper's 10740 us."""
    h7 = case_a.histograms[7]
    assert abs(h7.min() - 10_740 * US) <= 220 * US


def test_figure_5_3_mean_and_tightness(case_a):
    h7 = case_a.histograms[7]
    mean = h7.mean()
    assert abs(mean - 10_894 * US) <= 220 * US
    assert h7.fraction_within(round(mean), 160 * US) >= 0.95


def test_figure_5_2_first_peak_decomposition(case_b):
    """2000 us copy + ~600 us of code: the first mode sits at ~2600 us."""
    h6 = case_b.histograms[6]
    assert abs(h6.primary_mode() - 2_600 * US) <= 500 * US
    # The floor is the copy alone plus the minimum code path.
    assert 2_300 * US <= h6.min() <= 2_900 * US


def test_vca_handler_entry_bound(case_b):
    """Paper: largest IRQ-to-handler variation 440 us, even under load."""
    h5 = case_b.histograms[5]
    assert h5.max() <= calibration.IRQ_ENTRY_OVERHEAD + 440 * US + 250 * US


def test_interrupt_source_stability(case_a):
    """The VCA's 12 ms period, seen through the PC/AT tool."""
    h1 = case_a.histograms[1]
    assert abs(h1.mean() - 12 * MS) <= 20 * US
    budget = calibration.PCAT_EXPECTED_SPREAD + calibration.VCA_INTERRUPT_JITTER
    assert h1.max() <= 12 * MS + budget + 5 * US
    assert h1.min() >= 12 * MS - budget - 5 * US


def test_stream_rate_constant():
    assert calibration.CTMSP_STREAM_RATE_BYTES_PER_SEC == pytest.approx(
        166_666, abs=10
    )


def test_quiet_ring_is_lossless(case_a):
    assert case_a.tracker.lost_packets == 0
    assert case_a.tracker.duplicates == 0
    assert case_a.tracker.reordered == 0


def test_loaded_ring_still_delivers_everything(case_b):
    """Test B is loaded but not lossy -- only Ring Purges lose packets."""
    assert case_b.tracker.lost_packets == 0
    assert case_b.stream.throughput_bytes_per_sec() > 160_000
