"""Chaos campaign acceptance: reproducibility and the survival story."""

import random

import pytest

from repro.experiments.chaos import (
    DEFAULT_INTENSITIES,
    build_plan,
    profile_host_config,
    run_smoke,
)
from repro.faults.plan import FaultPlan
from repro.sim.units import SEC


def test_profiles_differ_in_the_papers_three_modifications():
    stock = profile_host_config("stock", "h")
    ctmsp = profile_host_config("ctmsp", "h")
    assert not stock.has_io_channel_memory and ctmsp.has_io_channel_memory
    assert not stock.tr.ctmsp_priority_queueing and ctmsp.tr.ctmsp_priority_queueing
    assert stock.tr.ctmsp_ring_priority == 0 and ctmsp.tr.ctmsp_ring_priority > 0
    assert not stock.vca.precomputed_header and ctmsp.vca.precomputed_header
    with pytest.raises(ValueError):
        profile_host_config("vaporware", "h")


def test_both_profiles_face_the_identical_plan():
    a = build_plan(seed=9, intensity=1.0, duration_ns=8 * SEC)
    b = build_plan(seed=9, intensity=1.0, duration_ns=8 * SEC)
    assert [(e.at_ns, e.kind, e.host) for e in a] == [
        (e.at_ns, e.kind, e.host) for e in b
    ]


@pytest.mark.chaos
def test_smoke_campaign_is_bit_for_bit_reproducible():
    first = run_smoke(seed=1)
    second = run_smoke(seed=1)
    assert first.render() == second.render()


@pytest.mark.chaos
def test_smoke_campaign_stock_breaks_where_ctmsp_survives():
    report = run_smoke(seed=1)
    [stock] = report.runs_for("stock")
    [ctmsp] = report.runs_for("ctmsp")
    assert not stock.survived()
    assert stock.violated, "stock must accrue at least one violation"
    assert ctmsp.survived()
    # CTMSP sustained the paper's target rate through the same weather.
    assert ctmsp.throughput_bytes_per_sec >= 150_000.0


@pytest.mark.chaos
def test_default_intensity_sweep_is_ordered_weather():
    # The sweep's axis is meaningful: strictly increasing intensity and a
    # nonempty plan at each step.
    assert tuple(sorted(DEFAULT_INTENSITIES)) == DEFAULT_INTENSITIES
    for intensity in DEFAULT_INTENSITIES:
        plan = build_plan(seed=1, intensity=intensity, duration_ns=8 * SEC)
        assert len(plan) >= 1


def test_random_plans_scale_with_intensity():
    small = FaultPlan.random(random.Random(4), duration_ns=10 * SEC, intensity=0.5)
    large = FaultPlan.random(random.Random(4), duration_ns=10 * SEC, intensity=4.0)
    assert len(large) > len(small)
