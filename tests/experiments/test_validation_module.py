"""Tests for the model-validation library."""

import pytest

from repro.experiments.validation import (
    AGREEMENT_TOLERANCE_NS,
    ValidationResult,
    random_plan,
    validate,
)


def test_random_plan_is_deterministic_and_well_formed():
    a = random_plan(seed=5, n_frames=20)
    b = random_plan(seed=5, n_frames=20)
    assert a == b
    assert len(a) == 20
    for sender, receiver, nbytes, priority, delay, tag in a:
        assert sender != receiver
        assert 1 <= nbytes <= 2500
        assert priority in (0, 4)
        assert 0 <= delay <= 400


def test_validate_agrees_on_default_workload():
    result = validate(seed=1, n_frames=40)
    assert result.frames == 40
    assert result.mean_delivery_skew_ns < AGREEMENT_TOLERANCE_NS
    # Worst case bounded by one maximum wire time (knife-edge order flip).
    assert result.max_delivery_skew_ns <= 5_100_000


def test_validation_result_agrees_property():
    good = ValidationResult(10, AGREEMENT_TOLERANCE_NS, 100.0, 30, 5000)
    bad = ValidationResult(10, AGREEMENT_TOLERANCE_NS + 1, 100.0, 30, 5000)
    assert good.agrees
    assert not bad.agrees


def test_different_seeds_give_different_workloads():
    assert random_plan(1, 10) != random_plan(2, 10)
