"""Cross-journal rollups: aggregation arithmetic and the determinism golden.

Two layers: pure unit tests over synthetic :class:`CampaignData` (no sim,
no journal), and end-to-end rollups over real campaign journals -- the
jobs=1-vs-jobs=4 byte-identity golden lives behind the ``fleet`` marker
because it spawns real workers.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.fleet import chaos_fleet_spec, run_fleet, validation_fleet_spec
from repro.experiments.rollup import (
    CampaignData,
    RollupReport,
    load_campaigns,
    quality_summary,
    quality_summary_line,
    rollup,
    survival_surface,
    violation_counts,
)
from repro.sim.units import SEC


def chaos_campaign(results, campaign="cafe", path="a/journal.jsonl"):
    """Synthetic chaos CampaignData from a list of chaos result dicts."""
    return CampaignData(
        path=Path(path),
        header={"campaign": campaign, "kind": "chaos",
                "total_points": len(results)},
        records={
            f"p:{i}": {"key": f"p:{i}", "status": "ok", "result": result}
            for i, result in enumerate(results)
        },
    )


def chaos_result(profile="ctmsp", intensity=1.0, delivered=100, lost=0,
                 throughput=50_000.0, violated=(), established=True):
    return {
        "profile": profile,
        "intensity": intensity,
        "delivered": delivered,
        "lost_packets": lost,
        "throughput_bytes_per_sec": throughput,
        "violated": list(violated),
        "established": established,
    }


# ----------------------------------------------------------------------
# aggregation arithmetic (synthetic, no sim)
# ----------------------------------------------------------------------
def test_survival_surface_cells_and_ordering():
    campaigns = [
        chaos_campaign([
            chaos_result("stock", 1.0, delivered=80, lost=20,
                         violated=["loss_fraction"]),
            chaos_result("ctmsp", 1.0, delivered=100, throughput=60_000.0),
            chaos_result("ctmsp", 0.5, delivered=100, throughput=40_000.0),
        ]),
        chaos_campaign([
            chaos_result("ctmsp", 1.0, delivered=90, throughput=40_000.0),
        ], campaign="beef", path="b/journal.jsonl"),
    ]
    surface = survival_surface(campaigns)
    # intensity-ascending, stock before ctmsp within an intensity.
    assert [(c["intensity"], c["profile"]) for c in surface] == [
        (0.5, "ctmsp"), (1.0, "stock"), (1.0, "ctmsp"),
    ]
    hot = surface[2]
    assert hot["runs"] == 2  # aggregated across both campaigns
    assert hot["survived"] == 2
    assert hot["delivered"] == 190
    assert hot["mean_throughput_bytes_per_sec"] == pytest.approx(50_000.0)
    cold = surface[1]
    assert cold["survival_rate"] == 0.0  # violated => did not survive


def test_violation_and_quality_summaries():
    campaigns = [
        chaos_campaign([
            chaos_result("stock", violated=["loss_fraction", "playout_underrun"]),
            chaos_result("stock", delivered=50, lost=50, throughput=10_000.0,
                         violated=["loss_fraction"]),
            chaos_result("ctmsp", throughput=70_000.0),
        ]),
    ]
    assert violation_counts(campaigns) == {
        "loss_fraction": 2,
        "playout_underrun": 1,
    }
    rows = quality_summary(campaigns)
    assert [r["profile"] for r in rows] == ["stock", "ctmsp"]
    stock = rows[0]
    assert stock["runs"] == 2
    assert stock["underruns"] == 1
    assert stock["loss_fraction"] == pytest.approx(50 / 200)
    assert stock["min_throughput_bytes_per_sec"] == pytest.approx(10_000.0)
    line = quality_summary_line(campaigns)
    assert line.startswith("quality: stock ")
    assert "ctmsp" in line
    assert quality_summary_line([]) is None


def test_rollup_report_render_and_json_are_deterministic():
    campaigns = [chaos_campaign([chaos_result()])]
    report = RollupReport(campaigns=campaigns)
    assert report.render() == RollupReport(campaigns=campaigns).render()
    payload = json.loads(report.to_json())
    assert payload["campaigns"][0]["ok"] == 1
    assert payload["survival_surface"][0]["runs"] == 1
    assert RollupReport(campaigns=[]).render().startswith("no campaign journals")


# ----------------------------------------------------------------------
# end to end over real journals
# ----------------------------------------------------------------------
def test_rollup_over_mixed_real_campaigns(tmp_path):
    run_fleet(
        chaos_fleet_spec([1], duration_ns=1 * SEC, intensities=(1.0,)),
        jobs=1, state_dir=tmp_path,
    )
    run_fleet(validation_fleet_spec([3], n_frames=12), jobs=1,
              state_dir=tmp_path)
    report = rollup(tmp_path)
    assert len(report.campaigns) == 2
    text = report.render()
    assert "Campaign rollup: 2 journal(s)" in text
    assert "Survival surface" in text
    assert "Delivered quality by profile" in text
    assert "Model validation rollup: 1/1 seeds agree" in text
    # The loader ordering is stable: chaos sorts before validation.
    assert [c.kind for c in report.campaigns] == ["chaos", "validation"]


@pytest.mark.fleet
def test_rollup_is_byte_identical_across_job_counts(tmp_path):
    spec = chaos_fleet_spec([1, 2], duration_ns=1 * SEC, intensities=(1.0,))
    run_fleet(spec, jobs=1, state_dir=tmp_path / "serial")
    run_fleet(spec, jobs=4, state_dir=tmp_path / "parallel")
    serial = rollup(tmp_path / "serial")
    parallel = rollup(tmp_path / "parallel")
    assert serial.render().encode() == parallel.render().encode()
    assert serial.to_json().encode() == parallel.to_json().encode()


def test_load_campaigns_accepts_many_dirs_and_missing_ones(tmp_path):
    run_fleet(validation_fleet_spec([3], n_frames=12), jobs=1,
              state_dir=tmp_path / "a")
    campaigns = load_campaigns([tmp_path / "a", tmp_path / "missing"])
    assert len(campaigns) == 1
    assert campaigns[0].kind == "validation"
    assert campaigns[0].counts() == (1, 1, 0)
    # Telemetry rides along for callers that want it, results stay keyed.
    assert campaigns[0].telemetry
    assert all("key" not in t for t in campaigns[0].telemetry)
