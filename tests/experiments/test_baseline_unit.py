"""Unit-level tests for the baseline experiment plumbing."""

import pytest

from repro.experiments.baseline import BaselineResult, run_stock_relay
from repro.sim.units import MS, SEC


def make_result(**kw):
    defaults = dict(
        rate_bytes_per_sec=150_000,
        bytes_per_period=1800,
        duration_ns=10 * SEC,
        periods_produced=830,
        packets_sent=800,
        packets_delivered=790,
    )
    defaults.update(kw)
    return BaselineResult(**defaults)


def test_delivered_fraction():
    r = make_result()
    assert r.delivered_fraction == pytest.approx(790 / 830)
    assert make_result(periods_produced=0).delivered_fraction == 0.0


def test_glitch_accounting():
    r = make_result(device_overruns=30, socket_drops=10)
    assert r.glitches == 40
    assert r.glitch_rate_per_sec() == pytest.approx(4.0)


def test_works_criterion():
    clean = make_result(packets_delivered=830)
    assert clean.works()
    lossy = make_result(device_overruns=50)
    assert not lossy.works()


def test_achieved_rate():
    r = make_result()
    assert r.achieved_bytes_per_sec() == pytest.approx(790 * 1800 / 10)


def test_stock_relay_without_competing_load_does_better():
    loaded = run_stock_relay(
        150_000, duration_ns=8 * SEC, seed=3, competing_load=True
    )
    idle = run_stock_relay(
        150_000, duration_ns=8 * SEC, seed=3, competing_load=False
    )
    # The scheduler quantum against a hog is a big part of the failure.
    assert idle.glitches <= loaded.glitches
    assert idle.delivered_fraction >= loaded.delivered_fraction


def test_stock_relay_scales_packet_size_with_rate():
    r = run_stock_relay(16_000, duration_ns=2 * SEC, seed=3)
    assert r.bytes_per_period == 192  # 16 KB/s over 12 ms periods


def test_sink_write_times_are_recorded():
    r = run_stock_relay(16_000, duration_ns=3 * SEC, seed=3)
    assert len(r.sink_write_times) == r.packets_delivered
    assert r.sink_write_times == sorted(r.sink_write_times)
