"""Tests for token-ring access mechanics: capture, priority, purge."""

import pytest

from repro.hardware import calibration
from repro.ring.frames import Frame
from repro.ring.network import TX_LOST_IN_PURGE, TX_OK, TokenRing
from repro.ring.station import RingStation
from repro.sim import MS, SEC, Simulator, US


def build_ring(n_attached=3, total=70):
    sim = Simulator()
    ring = TokenRing(sim, total_stations=total)
    stations = []
    for i in range(n_attached):
        received = []
        station = RingStation(ring, f"host-{i}", receive=received.append)
        station.received = received  # test convenience
        stations.append(station)
    return sim, ring, stations


def test_single_frame_delivered_to_destination_only():
    sim, ring, (a, b, c) = build_ring()
    frame = Frame(src="host-0", dst="host-1", info_bytes=100)
    a.transmit(frame)
    sim.run(until=10 * MS)
    assert b.received == [frame]
    assert c.received == []


def test_delivery_time_includes_serialization_and_hops():
    sim, ring, (a, b, c) = build_ring()
    frame = Frame(src="host-0", dst="host-1", info_bytes=2000)
    t0 = sim.now
    arrivals = []
    b.receive = lambda f: arrivals.append(sim.now)
    a.transmit(frame)
    sim.run(until=20 * MS)
    assert len(arrivals) == 1
    # Lower bound: token time + full serialization (4042us for 2000 bytes).
    assert arrivals[0] >= t0 + frame.wire_time_ns
    # Upper bound: plus a full ring circulation and the token pass.
    assert arrivals[0] <= t0 + frame.wire_time_ns + ring.ring_latency_ns + 10 * US


def test_tx_complete_fires_after_frame_circulates():
    sim, ring, (a, b, c) = build_ring()
    frame = Frame(src="host-0", dst="host-1", info_bytes=500)
    done = []
    a.transmit(frame, on_complete=lambda f, s: done.append((sim.now, s)))
    sim.run(until=20 * MS)
    assert len(done) == 1
    t, status = done[0]
    assert status == TX_OK
    assert t >= frame.wire_time_ns + ring.ring_latency_ns


def test_one_frame_per_token_fifo_for_equal_priority():
    sim, ring, (a, b, c) = build_ring()
    order = []
    b.receive = lambda f: order.append(f.payload)
    for i in range(3):
        a.transmit(Frame(src="host-0", dst="host-1", info_bytes=1000, payload=i))
    sim.run(until=100 * MS)
    assert order == [0, 1, 2]


def test_high_priority_frame_overtakes_waiting_low_priority():
    sim, ring, (a, b, c) = build_ring()
    order = []
    c.receive = lambda f: order.append(f.payload)
    # Station a fills the ring with low-priority traffic to c.
    for i in range(3):
        a.transmit(Frame(src="host-0", dst="host-2", info_bytes=1800, payload=f"low{i}"))
    # While the first low frame is on the wire, a CTMSP-priority frame queues.
    def send_high():
        b.transmit(
            Frame(src="host-1", dst="host-2", info_bytes=1800, priority=4, payload="high")
        )

    sim.schedule(1 * MS, send_high)
    sim.run(until=100 * MS)
    assert order[0] == "low0"          # already on the wire
    assert order[1] == "high"          # reservation wins the next token
    assert order[2:] == ["low1", "low2"]


def test_token_priority_decays_after_high_priority_drains():
    sim, ring, (a, b, c) = build_ring()
    got = []
    b.receive = lambda f: got.append(f.payload)
    a.transmit(Frame(src="host-0", dst="host-1", info_bytes=100, priority=4, payload="hi"))
    sim.run(until=20 * MS)
    # After the high-priority frame drains, plain traffic must still flow.
    a.transmit(Frame(src="host-0", dst="host-1", info_bytes=100, priority=0, payload="lo"))
    sim.run(until=40 * MS)
    assert got == ["hi", "lo"]


def test_broadcast_reaches_all_other_stations():
    sim, ring, (a, b, c) = build_ring()
    frame = Frame(src="host-0", dst="*", info_bytes=50, protocol="arp")
    a.transmit(frame)
    sim.run(until=10 * MS)
    assert b.received == [frame]
    assert c.received == [frame]
    assert a.received == []


def test_mac_frames_not_passed_to_host_by_default():
    sim, ring, (a, b, c) = build_ring()
    from repro.ring.frames import mac_frame

    a.transmit(mac_frame("host-0"))
    sim.run(until=10 * MS)
    assert b.received == []
    assert b.stats_mac_frames_seen == 1


def test_purge_loses_in_flight_frame_and_notifies_with_hidden_status():
    sim, ring, (a, b, c) = build_ring()
    frame = Frame(src="host-0", dst="host-1", info_bytes=2000)
    done = []
    a.transmit(frame, on_complete=lambda f, s: done.append(s))
    # Purge while the frame is on the wire (serialization takes ~4ms).
    sim.schedule(1 * MS, ring.purge)
    sim.run(until=100 * MS)
    assert b.received == []
    assert done == [TX_LOST_IN_PURGE]
    assert ring.stats_frames_lost_to_purge == 1


def test_ring_unusable_during_purge_then_recovers():
    sim, ring, (a, b, c) = build_ring()
    ring.purge(duration=10 * MS)
    frame = Frame(src="host-0", dst="host-1", info_bytes=100)
    arrivals = []
    b.receive = lambda f: arrivals.append(sim.now)
    a.transmit(frame)
    sim.run(until=100 * MS)
    assert len(arrivals) == 1
    assert arrivals[0] >= 10 * MS


def test_back_to_back_purges_extend_outage():
    sim, ring, (a, b, c) = build_ring()
    for i in range(10):
        sim.schedule(i * 10 * MS, ring.purge)
    arrivals = []
    b.receive = lambda f: arrivals.append(sim.now)
    a.transmit(Frame(src="host-0", dst="host-1", info_bytes=100))
    sim.run(until=SEC)
    assert arrivals and arrivals[0] >= 100 * MS
    assert ring.stats_purges == 10


def test_frame_queued_during_outage_waits():
    sim, ring, (a, b, c) = build_ring()
    ring.purge(duration=20 * MS)
    sent_at = 5 * MS
    arrivals = []
    b.receive = lambda f: arrivals.append(sim.now)
    sim.schedule(sent_at, a.transmit, Frame(src="host-0", dst="host-1", info_bytes=100))
    sim.run(until=100 * MS)
    assert arrivals[0] >= 20 * MS


def test_utilization_accounting():
    sim, ring, (a, b, c) = build_ring()
    # 2000-byte frame occupies the wire 4042us.
    a.transmit(Frame(src="host-0", dst="host-1", info_bytes=2000, protocol="ctmsp"))
    sim.run(until=100 * MS)
    assert ring.utilization(100 * MS) == pytest.approx(0.04042, rel=0.01)
    assert ring.stats_by_protocol["ctmsp"]["frames"] == 1
    assert ring.stats_by_protocol["ctmsp"]["bytes"] == 2021


def test_wire_monitors_see_every_frame():
    sim, ring, (a, b, c) = build_ring()
    seen = []
    ring.monitors.append(lambda f, t, status: seen.append((f.protocol, status)))
    a.transmit(Frame(src="host-0", dst="host-1", info_bytes=10, protocol="ip"))
    sim.run(until=10 * MS)
    assert seen == [("ip", "wire")]


def test_duplicate_addresses_rejected():
    sim = Simulator()
    ring = TokenRing(sim)
    RingStation(ring, "dup")
    with pytest.raises(ValueError):
        RingStation(ring, "dup")


def test_ring_needs_two_stations():
    with pytest.raises(ValueError):
        TokenRing(Simulator(), total_stations=1)


def test_stats_token_wait_accumulates():
    sim, ring, (a, b, c) = build_ring()
    for i in range(2):
        a.transmit(Frame(src="host-0", dst="host-1", info_bytes=2000, protocol="ctmsp"))
    sim.run(until=100 * MS)
    # Second frame had to wait for the first's full service time.
    assert ring.stats_token_wait_ns["ctmsp"] > 4 * MS
