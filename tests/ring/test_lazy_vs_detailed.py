"""Cross-validation: the lazy token model against the hop-level reference.

The production ring never simulates idle token rotation; this suite runs
identical workloads through both models and checks that delivery times
agree within the token-access uncertainty (one ring rotation), and that the
priority mechanism makes the same scheduling decisions.
"""

import pytest

from repro.ring.detailed import DetailedTokenRing
from repro.ring.frames import Frame
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import MS, SEC, Simulator, US

N_STATIONS = 8


def run_lazy(plan):
    sim = Simulator()
    ring = TokenRing(sim, total_stations=N_STATIONS)
    stations = [RingStation(ring, f"s{i}") for i in range(4)]
    deliveries = []
    for s in stations:
        s.receive = (
            lambda f, addr=s.address: deliveries.append((f.payload, sim.now))
        )
    for sender, receiver, nbytes, priority, delay_ms, tag in plan:
        sim.schedule(
            delay_ms * MS,
            stations[sender].transmit,
            Frame(src=f"s{sender}", dst=f"s{receiver}", info_bytes=nbytes,
                  priority=priority, payload=tag),
        )
    sim.run(until=5 * SEC)
    return dict((tag, t) for tag, t in deliveries)


def run_detailed(plan):
    sim = Simulator()
    ring = DetailedTokenRing(sim, total_stations=N_STATIONS)
    stations = [ring.attach(f"s{i}") for i in range(4)]
    deliveries = []
    for s in stations:
        s.receive = (
            lambda f, addr=s.address: deliveries.append((f.payload, sim.now))
        )
    ring.start()
    for sender, receiver, nbytes, priority, delay_ms, tag in plan:
        sim.schedule(
            delay_ms * MS,
            stations[sender].transmit,
            Frame(src=f"s{sender}", dst=f"s{receiver}", info_bytes=nbytes,
                  priority=priority, payload=tag),
        )
    sim.run(until=5 * SEC)
    return dict((tag, t) for tag, t in deliveries)


#: Agreement tolerance: one full rotation of the 8-station validation ring
#: plus the token time -- the phase information the lazy model abstracts.
TOLERANCE = N_STATIONS * 300 + 2 * 6_000


def compare(plan):
    lazy = run_lazy(plan)
    detailed = run_detailed(plan)
    assert set(lazy) == set(detailed)
    for tag in lazy:
        assert abs(lazy[tag] - detailed[tag]) <= TOLERANCE, (
            tag, lazy[tag], detailed[tag]
        )


def test_single_frame_delivery_time_agrees():
    compare([(0, 1, 2000, 0, 1, "a")])


def test_pipelined_frames_agree():
    compare([(0, 1, 2000, 0, 1, f"p{i}") for i in range(5)])


def test_competing_senders_agree():
    plan = [
        (0, 2, 1500, 0, 1, "x0"),
        (1, 3, 1500, 0, 1, "x1"),
        (0, 2, 800, 0, 1, "x2"),
        (3, 1, 400, 0, 2, "x3"),
    ]
    compare(plan)


def test_priority_frame_wins_in_both_models():
    # Station 0 floods at priority 0; station 1 sends one priority-4 frame
    # mid-flood.  In both models the priority frame must overtake the
    # remaining low-priority queue.
    plan = [(0, 2, 1800, 0, 1, f"low{i}") for i in range(4)]
    plan.append((1, 2, 1800, 4, 3, "high"))

    for runner in (run_lazy, run_detailed):
        times = runner(plan)
        assert times["high"] < times["low2"], runner.__name__
        assert times["high"] < times["low3"], runner.__name__


def test_throughput_matches_under_saturation():
    # Saturate the ring from two senders; both models must sustain the same
    # frame rate (the wire is the bottleneck).
    plan = []
    for i in range(20):
        plan.append((0, 2, 2000, 0, 1, f"a{i}"))
        plan.append((1, 3, 2000, 0, 1, f"b{i}"))
    lazy = run_lazy(plan)
    detailed = run_detailed(plan)
    assert set(lazy) == set(detailed)
    # Completion of the whole batch agrees within a couple of service times.
    lazy_end = max(lazy.values())
    detailed_end = max(detailed.values())
    assert abs(lazy_end - detailed_end) <= 2 * 4_200 * US


def test_detailed_ring_parks_when_idle_and_hops_when_busy():
    """The detailed ring spends hop events only while frames are pending."""
    sim = Simulator()
    ring = DetailedTokenRing(sim, total_stations=N_STATIONS)
    s0 = ring.attach("s0")
    ring.attach("s1")
    ring.start()
    sim.run(until=10 * MS)
    idle_hops = ring.stats_token_hops
    assert idle_hops < 20  # parked almost immediately
    s0.transmit(Frame(src="s0", dst="s1", info_bytes=500))
    sim.run(until=20 * MS)
    assert ring.stats_token_hops > idle_hops  # resumed for the frame
    assert ring.stats_frames_sent == 1
