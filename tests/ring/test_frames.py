"""Tests for Token Ring frame formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware import calibration
from repro.ring.frames import (
    BROADCAST,
    Frame,
    FrameClass,
    mac_frame,
    ring_purge_frame,
    wire_time_ns,
)
from repro.sim.units import US


def test_wire_time_of_2000_byte_packet_is_about_4ms():
    # 2000 info bytes + 21 framing bytes at 2 us/byte = 4042 us.
    assert wire_time_ns(2000) == 4042 * US


def test_wire_time_of_paper_file_transfer_packet():
    # "These packets are 1522 bytes in total length" -- total on the wire.
    frame = Frame(src="a", dst="b", info_bytes=1522 - calibration.FRAME_OVERHEAD_BYTES)
    assert frame.wire_bytes == 1522
    assert frame.wire_time_ns == 1522 * 8 * 250


def test_mac_frame_is_about_20_bytes_and_broadcast():
    frame = mac_frame("monitor")
    assert frame.wire_bytes == 20  # "on the order of 20 bytes" total
    assert frame.dst == BROADCAST
    assert frame.frame_class is FrameClass.MAC
    assert frame.protocol == "mac"


def test_ring_purge_frame_payload():
    assert ring_purge_frame("monitor").payload == "ring_purge"


def test_priority_must_be_three_bits():
    with pytest.raises(ValueError):
        Frame(src="a", dst="b", info_bytes=10, priority=8)
    with pytest.raises(ValueError):
        Frame(src="a", dst="b", info_bytes=10, priority=-1)


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        Frame(src="a", dst="b", info_bytes=-1)


@given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7))
def test_access_control_byte_encodes_priority_and_reservation(prio, resv):
    frame = Frame(src="a", dst="b", info_bytes=10, priority=prio)
    ac = frame.access_control_byte(reservation=resv)
    assert (ac >> 5) & 0x7 == prio
    assert ac & 0x7 == resv


def test_frame_control_byte_distinguishes_mac_from_llc():
    assert mac_frame("m").frame_control_byte() == 0x00
    assert Frame(src="a", dst="b", info_bytes=1).frame_control_byte() == 0x40


def test_capture_prefix_limited_to_96_bytes():
    frame = Frame(src="a", dst="b", info_bytes=2000)
    assert len(frame.capture_prefix()) == 96
    small = Frame(src="a", dst="b", info_bytes=30)
    assert len(small.capture_prefix()) == 30


def test_capture_prefix_is_deterministic():
    frame = Frame(src="a", dst="b", info_bytes=50)
    assert frame.capture_prefix() == frame.capture_prefix()


def test_frame_ids_are_unique():
    a = Frame(src="a", dst="b", info_bytes=1)
    b = Frame(src="a", dst="b", info_bytes=1)
    assert a.frame_id != b.frame_id


@given(st.integers(min_value=0, max_value=20000))
def test_wire_time_linear(n):
    assert wire_time_ns(n) == (n + 21) * 2000
