"""Hypothesis fuzzing of the lazy-vs-detailed ring agreement.

Random workloads through both models: deliveries must match one-to-one and
the sorted delivery-time sequences must agree within the token-phase
uncertainty the lazy model abstracts away.  (Per-tag order among
simultaneously pending equal-priority frames is a knife-edge either model
may legitimately resolve either way; the directed tests in
``test_lazy_vs_detailed.py`` cover per-tag agreement on structured plans.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ring.detailed import DetailedTokenRing
from repro.ring.frames import Frame
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import MS, Simulator

N_STATIONS = 8
#: One rotation of phase uncertainty plus token times -- the agreement the
#: directed tests in test_lazy_vs_detailed.py hold structured plans to.
PHASE_TOLERANCE = N_STATIONS * 300 + 4 * 6_000
#: Random plans additionally hit sub-hop knife edges where the two models
#: legitimately order simultaneously pending frames differently; a flip
#: between frames of different sizes skews the sorted delivery sequence by
#: up to one maximum wire time.
TOLERANCE = PHASE_TOLERANCE + (2500 + 21) * 2_000

plan_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),       # sender
        st.integers(min_value=0, max_value=3),       # receiver
        st.integers(min_value=1, max_value=2500),    # info bytes
        st.sampled_from([0, 0, 0, 4]),               # priority mix
        st.integers(min_value=0, max_value=30),      # delay ms
    ),
    min_size=1,
    max_size=10,
)


def _run(model, plan):
    sim = Simulator()
    if model == "lazy":
        ring = TokenRing(sim, total_stations=N_STATIONS)
        stations = [RingStation(ring, f"s{i}") for i in range(4)]
    else:
        ring = DetailedTokenRing(sim, total_stations=N_STATIONS)
        stations = [ring.attach(f"s{i}") for i in range(4)]
        ring.start()
    deliveries = {}
    for s in stations:
        s.receive = lambda f: deliveries.__setitem__(f.payload, sim.now)
    for i, (sender, receiver, nbytes, priority, delay) in enumerate(plan):
        if sender == receiver:
            continue
        sim.schedule(
            delay * MS,
            stations[sender].transmit,
            Frame(src=f"s{sender}", dst=f"s{receiver}", info_bytes=nbytes,
                  priority=priority, payload=i),
        )
    # Bounded horizon: the detailed model pays one event per token hop
    # while traffic is pending (it parks when idle).
    sim.run(until=250 * MS)
    return deliveries


@settings(max_examples=10, deadline=None)
@given(plan_strategy)
def test_lazy_and_detailed_agree_on_random_plans(plan):
    lazy = _run("lazy", plan)
    detailed = _run("detailed", plan)
    assert set(lazy) == set(detailed)
    for a, b in zip(sorted(lazy.values()), sorted(detailed.values())):
        assert abs(a - b) <= TOLERANCE, (a, b)
