"""Tests for the Active Monitor's MAC traffic and the insertion process."""

import pytest

from repro.hardware import calibration
from repro.ring.frames import Frame
from repro.ring.monitor import ActiveMonitor, InsertionProcess
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import SEC, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import HOUR, MINUTE, MS


def build(mac_util=0.002, insertions_per_day=0.0):
    sim = Simulator()
    ring = TokenRing(sim)
    rng = RandomStreams(11)
    monitor = ActiveMonitor(sim, ring, rng, mac_utilization=mac_util)
    inserter = InsertionProcess(
        sim, monitor, rng, insertions_per_day=insertions_per_day
    )
    return sim, ring, monitor, inserter


def test_mac_traffic_hits_requested_utilization_band():
    sim, ring, monitor, _ = build(mac_util=0.005)
    RingStation(ring, "bystander")
    monitor.start()
    sim.run(until=30 * SEC)
    mac = ring.stats_by_protocol.get("mac", {"wire_ns": 0})
    util = mac["wire_ns"] / (30 * SEC)
    assert util == pytest.approx(0.005, rel=0.25)


def test_paper_mac_rate_band_is_50_to_250_frames_per_second():
    # Section 4: 0.2%..1.0% of a 4Mbit ring in ~20-byte MAC frames means
    # 50..250 interrupts per second if the host saw them.
    for util, low, high in [(0.002, 40, 75), (0.010, 220, 330)]:
        sim, ring, monitor, _ = build(mac_util=util)
        RingStation(ring, "bystander")
        monitor.start()
        sim.run(until=20 * SEC)
        rate = monitor.stats_mac_frames / 20
        assert low <= rate <= high


def test_mac_utilization_zero_emits_nothing():
    sim, ring, monitor, _ = build(mac_util=0.0)
    monitor.start()
    sim.run(until=5 * SEC)
    assert monitor.stats_mac_frames == 0


def test_implausible_utilization_rejected():
    sim = Simulator()
    ring = TokenRing(sim)
    with pytest.raises(ValueError):
        ActiveMonitor(sim, ring, RandomStreams(0), mac_utilization=0.9)


def test_insertions_cause_purge_bursts():
    sim, ring, monitor, inserter = build(insertions_per_day=24 * 60.0)  # 1/min
    RingStation(ring, "bystander")
    inserter.start()
    sim.run(until=10 * MINUTE)
    assert inserter.stats_insertions >= 3
    # Every insertion purges 8..13 times back to back.
    assert ring.stats_purges >= 8 * inserter.stats_insertions


def test_insertion_outage_is_on_the_order_of_100ms():
    sim, ring, monitor, inserter = build()
    RingStation(ring, "bystander")
    dest = RingStation(ring, "dest")
    arrivals = []
    dest.receive = lambda f: arrivals.append(sim.now)
    # Force one insertion immediately.
    inserter._running = True
    inserter._insert()
    inserter.stop()
    src = ring.stations[0]
    src.transmit(Frame(src=src.address, dst="dest", info_bytes=100))
    sim.run(until=2 * SEC)
    # Burst of 8-13 purges at 10ms each: ring down 80..130ms.
    assert arrivals
    assert 80 * MS <= arrivals[0] <= 140 * MS


def test_insertion_rate_roughly_one_per_hour():
    sim, ring, monitor, inserter = build(
        insertions_per_day=calibration.RING_INSERTIONS_PER_DAY
    )
    inserter.start()
    sim.run(until=12 * HOUR)
    # 20/day = ~10 in 12h; Poisson so allow a broad band.
    assert 3 <= inserter.stats_insertions <= 20


def test_stopped_inserter_stops():
    sim, ring, monitor, inserter = build(insertions_per_day=24 * 600.0)
    inserter.start()
    sim.run(until=1 * MINUTE)
    count = inserter.stats_insertions
    inserter.stop()
    sim.run(until=2 * MINUTE)
    assert inserter.stats_insertions == count


def test_purge_issues_ring_purge_mac_frame():
    sim, ring, monitor, _ = build()
    seen = []
    ring.monitors.append(lambda f, t, s: seen.append(f.payload))
    monitor.purge()
    sim.run(until=SEC)
    assert "ring_purge" in seen
