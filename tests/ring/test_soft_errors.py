"""Tests for soft-error Ring Purges (the paper's non-insertion purges)."""

import pytest

from repro.ring.monitor import ActiveMonitor
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import SEC, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import HOUR


def test_soft_errors_purge_at_the_configured_rate():
    sim = Simulator()
    ring = TokenRing(sim)
    RingStation(ring, "bystander")
    monitor = ActiveMonitor(
        sim, ring, RandomStreams(3), mac_utilization=0.0,
        soft_errors_per_hour=60.0,
    )
    monitor.start()
    sim.run(until=2 * HOUR)
    # 60/hour over 2 hours -> ~120, Poisson tolerance.
    assert 80 <= monitor.stats_soft_errors <= 170
    assert ring.stats_purges == monitor.stats_soft_errors


def test_soft_errors_default_off():
    sim = Simulator()
    ring = TokenRing(sim)
    monitor = ActiveMonitor(sim, ring, RandomStreams(3), mac_utilization=0.0)
    monitor.start()
    sim.run(until=HOUR)
    assert monitor.stats_soft_errors == 0
    assert ring.stats_purges == 0


def test_negative_rate_rejected():
    sim = Simulator()
    ring = TokenRing(sim)
    with pytest.raises(ValueError):
        ActiveMonitor(
            sim, ring, RandomStreams(0), soft_errors_per_hour=-1.0
        )


def test_soft_error_is_a_single_purge_not_a_burst():
    """Unlike insertions (bursts of ~10), a soft error purges once (~10ms)."""
    sim = Simulator()
    ring = TokenRing(sim)
    a = RingStation(ring, "a")
    b = RingStation(ring, "b")
    monitor = ActiveMonitor(
        sim, ring, RandomStreams(5), mac_utilization=0.0,
        soft_errors_per_hour=0.0,
    )
    monitor.start()
    monitor.stats_soft_errors += 1
    monitor.purge()
    arrivals = []
    b.receive = lambda f: arrivals.append(sim.now)
    from repro.ring.frames import Frame

    a.transmit(Frame(src="a", dst="b", info_bytes=100))
    sim.run(until=SEC)
    # The ring recovers after one ~10ms outage, not ~100ms.
    assert arrivals and arrivals[0] < 40_000_000
