"""Purge timing semantics: seeded determinism and overlapping purges."""

from repro.ring.frames import Frame
from repro.ring.monitor import ActiveMonitor
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import HOUR, MS


def purge_timestamps(seed: int, rate_per_hour: float = 120.0) -> list[int]:
    sim = Simulator()
    ring = TokenRing(sim)
    RingStation(ring, "bystander")
    times: list[int] = []
    original = ring.purge

    def recording_purge(duration: int = 10 * MS) -> None:
        times.append(sim.now)
        original(duration)

    ring.purge = recording_purge
    monitor = ActiveMonitor(
        sim, ring, RandomStreams(seed), mac_utilization=0.0,
        soft_errors_per_hour=rate_per_hour,
    )
    monitor.start()
    sim.run(until=HOUR)
    return times


def test_soft_error_purges_are_seed_deterministic():
    a = purge_timestamps(seed=42)
    b = purge_timestamps(seed=42)
    assert len(a) > 10
    assert a == b


def test_soft_error_purges_differ_across_seeds():
    assert purge_timestamps(seed=1) != purge_timestamps(seed=2)


def test_purge_during_purge_extends_the_outage():
    """A second purge mid-outage pushes recovery out; it never shortens it."""
    sim = Simulator()
    ring = TokenRing(sim)
    tx = RingStation(ring, "tx")
    arrivals: list[int] = []
    RingStation(ring, "rx", receive=lambda frame: arrivals.append(sim.now))

    sim.at(1 * MS, ring.purge, 10 * MS)      # down until t=11 ms
    sim.at(6 * MS, ring.purge, 10 * MS)      # overlap: down until t=16 ms
    # Queued during the outage; can only go out after the *extended* end.
    sim.at(
        12 * MS,
        lambda: tx.transmit(Frame(src="tx", dst="rx", info_bytes=200)),
    )
    sim.run(until=40 * MS)

    assert ring.stats_purges == 2
    assert len(arrivals) == 1
    assert arrivals[0] > 16 * MS


def test_back_to_back_purges_do_not_shorten_the_outage():
    """A shorter purge inside a longer one leaves the end time alone."""
    sim = Simulator()
    ring = TokenRing(sim)
    tx = RingStation(ring, "tx")
    arrivals: list[int] = []
    RingStation(ring, "rx", receive=lambda frame: arrivals.append(sim.now))

    sim.at(1 * MS, ring.purge, 20 * MS)      # down until t=21 ms
    sim.at(2 * MS, ring.purge, 1 * MS)       # ends earlier; must not resume
    sim.at(
        4 * MS,
        lambda: tx.transmit(Frame(src="tx", dst="rx", info_bytes=200)),
    )
    sim.run(until=60 * MS)

    assert len(arrivals) == 1
    assert arrivals[0] > 21 * MS
