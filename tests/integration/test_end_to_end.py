"""End-to-end CTMS streaming across the assembled testbed."""

import pytest

from repro.core.session import CTMSSession
from repro.experiments.scenarios import test_case_a as scenario_a
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim.units import MS, SEC, US


def build_quiet_session(duration=3 * SEC, seed=3):
    scenario = scenario_a(seed=seed)
    bed = _Testbed(
        seed=seed,
        mac_utilization=scenario.mac_utilization,
        insertions_per_day=0.0,
    )
    tx_tr, tx_vca = scenario.transmitter_config()
    rx_tr, rx_vca = scenario.receiver_config()
    tx = bed.add_host(HostConfig(name="transmitter", tr=tx_tr, vca=tx_vca))
    rx = bed.add_host(HostConfig(name="receiver", tr=rx_tr, vca=rx_vca))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(duration)
    return bed, tx, rx, session


def test_stream_delivers_at_83_packets_per_second():
    bed, tx, rx, session = build_quiet_session()
    stats = session.stats
    # 3 seconds at one packet per 12 ms, minus setup slack.
    assert 240 <= stats.delivered <= 250
    assert stats.throughput_bytes_per_sec() == pytest.approx(166_000, rel=0.02)


def test_stream_is_in_order_and_lossless_on_quiet_ring():
    bed, tx, rx, session = build_quiet_session()
    tracker = session.sink_tracker
    assert tracker.lost_packets == 0
    assert tracker.duplicates == 0
    assert tracker.reordered == 0
    assert tracker.gaps == 0


def test_latency_matches_figure_5_3_band():
    """Source interrupt to sink classification: ~10.7-11ms minimum."""
    bed, tx, rx, session = build_quiet_session()
    stats = session.stats
    min_lat = stats.min_latency_ns()
    # The paper's histogram 7 floor is 10740us point-3-to-point-4; our
    # latency metric starts at the VCA interrupt (point 1), adding the
    # ~2.6ms transmitter path, so expect roughly 13-14ms.
    assert 12 * MS <= min_lat <= 16 * MS
    # Tight distribution on the quiet ring.
    assert stats.max_latency_ns() - min_lat < 3 * MS


def test_inter_arrival_tracks_the_12ms_source():
    bed, tx, rx, session = build_quiet_session()
    gaps = session.stats.inter_arrival_ns()
    mean = sum(gaps) / len(gaps)
    assert mean == pytest.approx(12 * MS, rel=0.01)


def test_no_mbuf_leak_after_streaming():
    bed, tx, rx, session = build_quiet_session()
    session.stop()
    bed.run(1 * SEC)  # drain
    assert tx.kernel.mbufs.bytes_in_use() == 0
    assert rx.kernel.mbufs.bytes_in_use() == 0


def test_copy_ledger_shows_direct_path_copy_profile():
    bed, tx, rx, session = build_quiet_session()
    packets = session.stats.delivered
    # Transmitter CPU copies per packet: header stamp + filler append +
    # mbuf->fixed-DMA-buffer = 3 (no kernel<->user copies anywhere).
    cpu_per, dma_per = tx.kernel.ledger.copies_per_packet(packets)
    assert 2.5 <= cpu_per <= 3.5
    from repro.hardware.memory import Region

    assert (Region.SYSTEM, Region.USER) not in tx.kernel.ledger.cpu
    assert (Region.USER, Region.SYSTEM) not in tx.kernel.ledger.cpu


def test_session_stop_halts_stream():
    bed, tx, rx, session = build_quiet_session(duration=1 * SEC)
    session.stop()
    delivered = session.stats.delivered
    bed.run(1 * SEC)
    assert session.stats.delivered <= delivered + 2  # in-flight drains only


def test_ring_sees_ctmsp_priority_traffic():
    bed, tx, rx, session = build_quiet_session(duration=1 * SEC)
    ctmsp = bed.ring.stats_by_protocol.get("ctmsp")
    assert ctmsp is not None and ctmsp["frames"] >= 70
    # 2000B info + 21B framing on the wire.
    assert ctmsp["bytes"] == ctmsp["frames"] * 2021
