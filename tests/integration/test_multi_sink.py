"""Two CTMS streams into one receiver machine: device-number demultiplexing.

The CTMSP header carries a destination *device* number precisely so the
driver's split point can serve several sink devices on one host.  Two
transmitters stream to two VCA sink devices on the same receiver; each
sink's classifier claims only its own device number.
"""

import pytest

from repro.core.session import CTMSSession
from repro.drivers.vca import VCADriver, VCADriverConfig
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.hardware.vca import VoiceCommunicationsAdapter
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess


def build_two_streams_one_receiver(seed=19):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    tx1 = bed.add_host(HostConfig(name="tx1"))
    tx2 = bed.add_host(HostConfig(name="tx2"))
    rx = bed.add_host(HostConfig(name="rx", vca_device_number=7))
    # A second VCA sink device on the same receiver machine.
    vca2 = VoiceCommunicationsAdapter(
        bed.sim, rx.machine.cpu.raise_irq, rx.machine.rng, name="vca1"
    )
    rx.machine.add_adapter("vca1", vca2)
    second_sink = VCADriver(
        rx.kernel, vca2, VCADriverConfig(stream_id=2), device_number=8
    )
    rx.kernel.register_device("vca1", second_sink)

    session1 = CTMSSession(tx1.kernel, rx.kernel, vca_device="vca0")
    session1.establish()

    # Manually wire the second session to the second sink device.
    def sink2_setup(proc):
        yield from proc.ioctl(
            "vca1", "CTMS_ATTACH_SINK", {"tr_driver": rx.tr_driver}
        )

    def source2_setup(proc):
        yield from proc.ioctl(
            "vca0",
            "CTMS_BIND",
            {"tr_driver": tx2.tr_driver, "dst": "rx", "dst_device": 8},
        )
        yield from proc.ioctl("vca0", "CTMS_START")

    UserProcess(rx.kernel, "sink2").start(sink2_setup)
    done = UserProcess(tx2.kernel, "src2")

    # Delay source 2 start until sink 2's handles are in place.
    def delayed(proc):
        yield from proc.sleep_ns(50 * MS)
        yield from source2_setup(proc)

    done.start(delayed)
    return bed, tx1, tx2, rx, second_sink, session1


def test_two_streams_demultiplex_by_device_number():
    bed, tx1, tx2, rx, sink2, session1 = build_two_streams_one_receiver()
    bed.run(3 * SEC)
    # Stream 1 landed on device 7, stream 2 on device 8 -- no cross-talk.
    s1 = session1.stats
    s2 = sink2.stream_stats
    assert s1.delivered > 200
    assert s2.delivered > 200
    assert session1.sink_tracker.lost_packets == 0
    assert sink2.tracker.lost_packets == 0
    # Both sinks saw monotone sequence numbers: had the split point mixed
    # the streams, the trackers would report duplicates/reorders.
    assert session1.sink_tracker.duplicates == 0
    assert sink2.tracker.duplicates == 0
    # Nothing fell through to the unclaimed bucket.
    assert rx.tr_driver.stats_rx_ctmsp_unclaimed == 0


def test_unclaimed_device_number_still_counted():
    bed, tx1, tx2, rx, sink2, session1 = build_two_streams_one_receiver()
    bed.run(500 * MS)
    # Remove sink 2's handles: its stream becomes unclaimed, stream 1
    # continues untouched.
    rx.tr_driver._ctms_sinks = [
        (c, d) for c, d in rx.tr_driver._ctms_sinks
        if c.__self__ is not sink2
    ]
    before = session1.stats.delivered
    bed.run(1 * SEC)
    assert rx.tr_driver.stats_rx_ctmsp_unclaimed > 50
    assert session1.stats.delivered > before + 50
