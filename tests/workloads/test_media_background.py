"""Tests for media source descriptions and background traffic generators."""

import pytest

from repro.core.ctmsp import CTMSP_HEADER_BYTES
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.hardware import calibration
from repro.sim.units import MS, SEC
from repro.workloads.background import BackgroundTraffic, LightweightSender
from repro.workloads.media import (
    CD_AUDIO,
    COMPRESSED_VIDEO,
    TELEPHONE_AUDIO,
    MediaSource,
)


# ---------------------------------------------------------------------------
# media sources
# ---------------------------------------------------------------------------

def test_cd_audio_rate_is_the_papers():
    assert CD_AUDIO.bytes_per_sec == 176_400  # 44.1K x 16bit x 2ch
    assert CD_AUDIO.bytes_per_period == 2117  # per 12ms interrupt


def test_compressed_video_is_150_kb_per_sec():
    assert COMPRESSED_VIDEO.bytes_per_sec == 150_000
    assert COMPRESSED_VIDEO.bytes_per_period == 1800


def test_telephone_audio_is_the_16kb_baseline():
    assert TELEPHONE_AUDIO.bytes_per_sec == 16_000
    assert TELEPHONE_AUDIO.bytes_per_period == 192


def test_packet_bytes_include_ctmsp_header():
    for media in (TELEPHONE_AUDIO, COMPRESSED_VIDEO, CD_AUDIO):
        assert media.packet_bytes == media.bytes_per_period + CTMSP_HEADER_BYTES


def test_vca_config_carries_rate_parameters():
    cfg = CD_AUDIO.vca_config()
    assert cfg.packet_bytes == CD_AUDIO.packet_bytes
    assert cfg.device_bytes_per_period == CD_AUDIO.bytes_per_period
    override = CD_AUDIO.vca_config(sink_copy_to_device=True)
    assert override.sink_copy_to_device


def test_playout_rate_matches_per_period_production():
    # Drain must exactly equal production to avoid drift.
    rate = CD_AUDIO.playout_rate()
    per_second = CD_AUDIO.bytes_per_period * (SEC / calibration.VCA_INTERRUPT_PERIOD)
    assert rate == pytest.approx(per_second)


# ---------------------------------------------------------------------------
# background traffic
# ---------------------------------------------------------------------------

def test_lightweight_sender_hits_target_rate():
    bed = _Testbed(seed=6, mac_utilization=0.0)
    bed.add_host(HostConfig(name="sinkhost"))
    bed.add_host(HostConfig(name="anchor"))
    sender = LightweightSender(
        bed, "src", "sinkhost", info_bytes=200,
        mean_packets_per_sec=40.0, rng=bed.rng,
    )
    sender.start()
    bed.run(20 * SEC)
    rate = sender.stats_sent / 20
    assert rate == pytest.approx(40.0, rel=0.2)


def test_lightweight_sender_stop():
    bed = _Testbed(seed=6, mac_utilization=0.0)
    bed.add_host(HostConfig(name="a"))
    bed.add_host(HostConfig(name="b"))
    sender = LightweightSender(
        bed, "src", "a", info_bytes=100, mean_packets_per_sec=100.0, rng=bed.rng
    )
    sender.start()
    bed.run(1 * SEC)
    count = sender.stats_sent
    sender.stop()
    bed.run(1 * SEC)
    assert sender.stats_sent == count


def test_background_traffic_produces_the_three_size_classes():
    from repro.measure.tap import TapMonitor

    bed = _Testbed(seed=6, mac_utilization=0.003)
    tx = bed.add_host(HostConfig(name="tx", multiprogramming=True))
    rx = bed.add_host(HostConfig(name="rx", multiprogramming=True))
    tap = TapMonitor(bed.sim, bed.ring)
    traffic = BackgroundTraffic(bed, [tx, rx], load=1.0)
    traffic.start()
    bed.run(10 * SEC)
    census = tap.size_census()
    # MAC frames ~20 bytes.
    assert census.get("mac") and max(census["mac"]) <= 25
    # File transfer / telemetry class at 1522 bytes.
    assert 1522 in census.get("ip", [])
    # Keepalive class 60-300 bytes of payload (plus headers).
    small = [s for s in census.get("ip", []) if 80 <= s <= 360]
    assert small


def test_background_load_zero_is_silent():
    bed = _Testbed(seed=6, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx"))
    traffic = BackgroundTraffic(bed, [tx], load=0.0)
    traffic.start()
    bed.run(2 * SEC)
    assert traffic.total_background_frames() == 0
    assert traffic.control is None


def test_measured_hosts_answer_keepalives():
    bed = _Testbed(seed=6, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx", multiprogramming=True))
    traffic = BackgroundTraffic(bed, [tx], load=2.0)
    traffic.start()
    bed.run(15 * SEC)
    # The measured host transmits replies: local LLC traffic exists.
    sent_by_tx = bed.ring.stats_by_protocol.get("ip", {"frames": 0})["frames"]
    assert sent_by_tx > 10
    assert tx.tr_driver.stats_tx_packets > 5
