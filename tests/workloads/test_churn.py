"""Tests for the seeded churn workload and its control-plane driver."""

from repro.core.control import SessionControlPlane
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim.rng import seeded_stream
from repro.sim.units import MS, SEC
from repro.workloads.churn import (
    HOLD_FOREVER,
    ChurnDriver,
    ChurnSchedule,
    SessionRequest,
)


def test_sorted_requests_order_by_time_then_client():
    schedule = ChurnSchedule()
    schedule.add(at_ns=200, client="b")
    schedule.add(at_ns=100, client="z")
    schedule.add(at_ns=200, client="a")
    assert [(r.at_ns, r.client) for r in schedule.sorted_requests()] == [
        (100, "z"), (200, "a"), (200, "b")
    ]


def test_stable_hash_is_content_addressed():
    one = ChurnSchedule()
    one.add(at_ns=100, client="a", duration_ns=SEC)
    two = ChurnSchedule()
    two.add(at_ns=100, client="a", duration_ns=SEC)
    assert one.stable_hash() == two.stable_hash()
    two.add(at_ns=200, client="b")
    assert one.stable_hash() != two.stable_hash()


def test_random_schedule_is_seed_deterministic():
    kwargs = dict(duration_ns=10 * SEC, clients=["c1", "c2"])
    a = ChurnSchedule.random(seeded_stream(7), **kwargs)
    b = ChurnSchedule.random(seeded_stream(7), **kwargs)
    c = ChurnSchedule.random(seeded_stream(8), **kwargs)
    assert a.stable_hash() == b.stable_hash()
    assert a.stable_hash() != c.stable_hash()


def test_random_schedule_respects_bounds():
    schedule = ChurnSchedule.random(
        seeded_stream(3),
        duration_ns=20 * SEC,
        clients=["c1", "c2", "c3"],
        arrivals_per_minute=30.0,
        min_hold_ns=500 * MS,
    )
    requests = schedule.sorted_requests()
    assert requests, "30/min over 20 s should produce arrivals"
    for r in requests:
        assert 0 < r.at_ns < 20 * SEC
        assert r.duration_ns >= 500 * MS
        assert r.client in ("c1", "c2", "c3")


def test_hold_forever_is_a_sentinel():
    r = SessionRequest(at_ns=0, client="a")
    assert r.duration_ns == HOLD_FOREVER == -1


def _bed_and_plane():
    # One slot per station: a single server station cannot source two
    # 167 KB/s streams inside the 12 ms CTMSP period.
    bed = _Testbed(seed=1)
    for name in ("server-a", "server-b"):
        bed.add_host(HostConfig(name=name, vca_slots=1))
    for name in ("c1", "c2"):
        bed.add_host(HostConfig(name=name))
    plane = SessionControlPlane(bed)
    for name in ("server-a", "server-b"):
        plane.register_server(name, slots=1)
    return bed, plane


def test_driver_submits_and_departs_on_schedule():
    bed, plane = _bed_and_plane()
    plane.start()
    schedule = ChurnSchedule()
    schedule.add(at_ns=100 * MS, client="c1", duration_ns=SEC)
    schedule.add(at_ns=200 * MS, client="c2", duration_ns=HOLD_FOREVER)
    driver = ChurnDriver(bed, plane, schedule).arm()
    bed.run(2 * SEC)
    states = {ms.client: ms.state for ms in plane.sessions}
    # c1 held one second then departed; c2 holds forever.
    assert states["c1"] == "closed"
    assert states["c2"] == "streaming"
    assert plane.snapshot()["admitted"] == 2


def test_driver_departure_frees_capacity_for_queued_arrival():
    bed = _Testbed(seed=1)
    bed.add_host(HostConfig(name="server-a", vca_slots=1))
    for name in ("c1", "c2"):
        bed.add_host(HostConfig(name=name))
    plane = SessionControlPlane(bed)
    plane.register_server("server-a", slots=1)
    plane.start()
    schedule = ChurnSchedule()
    schedule.add(at_ns=100 * MS, client="c1", duration_ns=SEC)
    schedule.add(at_ns=200 * MS, client="c2", duration_ns=HOLD_FOREVER)
    ChurnDriver(bed, plane, schedule).arm()
    bed.run(3 * SEC)
    states = {ms.client: ms.state for ms in plane.sessions}
    assert states["c1"] == "closed"
    # c2 queued on the single slot, then inherited it at c1's departure.
    assert states["c2"] == "streaming"
    decisions = {ms.client: ms.decision for ms in plane.sessions}
    assert decisions["c2"] == "queue"
