"""Unit tests for the Token Ring driver's transmit/receive disciplines."""

import pytest

from repro.core.ctmsp import PrecomputedHeader, standard_packet
from repro.drivers.token_ring import TokenRingDriverConfig
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.hardware.cpu import Exec
from repro.hardware.memory import Region
from repro.ring.frames import Frame
from repro.sim.units import MS, SEC, US


def build_pair(tx_cfg=None, rx_cfg=None, seed=2):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    tx = bed.add_host(
        HostConfig(name="tx", tr=tx_cfg or TokenRingDriverConfig())
    )
    rx = bed.add_host(
        HostConfig(name="rx", tr=rx_cfg or TokenRingDriverConfig())
    )
    return bed, tx, rx


def make_ctmsp_frame(dst="rx", packet_no=0, priority=4, dst_device=7):
    pkt = standard_packet(
        1, packet_no, dst_device, header=PrecomputedHeader(src="tx", dst=dst)
    )
    return pkt.to_frame(ring_priority=priority)


def send_from_driver(bed, host, chain_bytes, frame):
    """Drive driver.output from a kernel context."""

    def body():
        chain = (
            host.kernel.mbufs.try_alloc_chain(chain_bytes)
            if chain_bytes
            else None
        )
        yield from host.tr_driver.output(chain, frame)

    host.machine.cpu.spawn_base(body())


def test_single_tx_buffer_serializes_transmissions():
    bed, tx, rx = build_pair()
    got = []
    rx.tr_driver.register_ctms_sink(
        lambda f: True,
        lambda f, region, chain: iter(
            [got.append(f.payload.packet_no)] and []
        ),
    )
    for i in range(3):
        send_from_driver(bed, tx, 2000, make_ctmsp_frame(packet_no=i))
    bed.run(100 * MS)
    assert got == [0, 1, 2]
    # One command at a time: never a second transmit while one is active.
    assert tx.tr_adapter.stats_tx_frames == 3


def test_ctmsp_priority_queueing_overtakes_llc():
    bed, tx, rx = build_pair()
    order = []
    rx.tr_driver.register_ctms_sink(
        lambda f: True,
        lambda f, region, chain: iter([order.append("ctmsp")] and []),
    )

    def llc_in(frame, chain):
        order.append(frame.protocol)
        chain.free()
        yield Exec(0)

    rx.tr_driver.llc_input = llc_in
    # Two LLC packets first, then a CTMSP packet while the first is in the
    # buffer: CTMSP must overtake the second LLC packet.
    send_from_driver(bed, tx, 1500, Frame(src="tx", dst="rx", info_bytes=1500, protocol="ip"))
    send_from_driver(bed, tx, 1500, Frame(src="tx", dst="rx", info_bytes=1500, protocol="ip"))

    def later():
        bed.sim.schedule(0, send_from_driver, bed, tx, 2000, make_ctmsp_frame())

    bed.sim.schedule(2 * MS, later)
    bed.run(200 * MS)
    assert order == ["ip", "ctmsp", "ip"]


def test_no_priority_queueing_is_fifo():
    bed, tx, rx = build_pair(
        tx_cfg=TokenRingDriverConfig(ctmsp_priority_queueing=False)
    )
    order = []
    rx.tr_driver.register_ctms_sink(
        lambda f: True,
        lambda f, region, chain: iter([order.append("ctmsp")] and []),
    )

    def llc_in(frame, chain):
        order.append(frame.protocol)
        chain.free()
        yield Exec(0)

    rx.tr_driver.llc_input = llc_in
    send_from_driver(bed, tx, 1500, Frame(src="tx", dst="rx", info_bytes=1500, protocol="ip"))
    send_from_driver(bed, tx, 1500, Frame(src="tx", dst="rx", info_bytes=1500, protocol="ip"))
    bed.sim.schedule(2 * MS, send_from_driver, bed, tx, 2000, make_ctmsp_frame())
    bed.run(200 * MS)
    assert order == ["ip", "ip", "ctmsp"]


def test_probes_fire_at_p3_and_p4():
    bed, tx, rx = build_pair()
    p3_numbers, p4_numbers = [], []
    tx.tr_driver.add_probe(
        "p3", lambda f: p3_numbers.append(f.payload.packet_no) or 2 * US
    )
    rx.tr_driver.add_probe(
        "p4", lambda f: p4_numbers.append(f.payload.packet_no) or 2 * US
    )
    rx.tr_driver.register_ctms_sink(
        lambda f: True, lambda f, region, chain: iter([chain and chain.free()] and [])
    )
    send_from_driver(bed, tx, 2000, make_ctmsp_frame(packet_no=9))
    bed.run(100 * MS)
    assert p3_numbers == [9]
    assert p4_numbers == [9]


def test_unclaimed_ctmsp_is_counted_and_dropped():
    bed, tx, rx = build_pair()
    # No sink registered at all.
    send_from_driver(bed, tx, 2000, make_ctmsp_frame())
    bed.run(100 * MS)
    assert rx.tr_driver.stats_rx_ctmsp_unclaimed == 1
    assert rx.kernel.mbufs.bytes_in_use() == 0


def test_classifier_rejection_drops_before_copy():
    bed, tx, rx = build_pair()
    delivered = []
    rx.tr_driver.register_ctms_sink(
        lambda f: f.payload.dst_device == 99,  # wrong device number
        lambda f, region, chain: iter([delivered.append(1)] and []),
    )
    send_from_driver(bed, tx, 2000, make_ctmsp_frame(dst_device=7))
    bed.run(100 * MS)
    assert delivered == []
    assert rx.tr_driver.stats_rx_ctmsp_unclaimed == 1
    # Rejected before the mbuf copy: nothing was allocated.
    assert rx.kernel.mbufs.stats_allocs == 0


def test_rx_mbuf_exhaustion_drops_packet():
    bed, tx, rx = build_pair()
    rx.tr_driver.register_ctms_sink(
        lambda f: True, lambda f, region, chain: iter([chain.free()] and [])
    )
    # Exhaust the cluster pool.
    hold = [rx.kernel.mbufs.try_alloc(is_cluster=True) for _ in range(64)]
    send_from_driver(bed, tx, 2000, make_ctmsp_frame())
    bed.run(100 * MS)
    assert rx.tr_driver.stats_rx_dropped_no_mbufs == 1
    for m in hold:
        m.free()


def test_rx_in_place_mode_skips_the_copy():
    bed, tx, rx = build_pair(
        rx_cfg=TokenRingDriverConfig(rx_copy_to_mbufs=False)
    )
    seen = []

    def deliver(frame, region, chain):
        seen.append((region, chain))
        yield Exec(0)

    rx.tr_driver.register_ctms_sink(lambda f: True, deliver)
    send_from_driver(bed, tx, 2000, make_ctmsp_frame())
    bed.run(100 * MS)
    assert seen == [(Region.IO_CHANNEL, None)]
    # No rx-side bulk CPU copy was recorded.
    assert (Region.IO_CHANNEL, Region.SYSTEM) not in rx.kernel.ledger.cpu


def test_sysmem_config_places_buffers_in_system_memory():
    bed, tx, rx = build_pair(
        tx_cfg=TokenRingDriverConfig(use_io_channel_memory=False)
    )
    assert tx.tr_driver.buffer_region is Region.SYSTEM
    assert tx.tr_adapter.rx_buffer_region is Region.SYSTEM


def test_iocm_config_requires_the_card():
    from repro.drivers.token_ring import TokenRingDriver
    from repro.hardware.machine import Machine
    from repro.hardware.token_ring_adapter import TokenRingAdapter
    from repro.ring.network import TokenRing
    from repro.sim import Simulator
    from repro.unix.kernel import Kernel

    sim = Simulator()
    ring = TokenRing(sim)
    machine = Machine(sim, "bare", has_io_channel_memory=False)
    kernel = Kernel(machine)
    adapter = TokenRingAdapter(machine, ring, "bare")
    with pytest.raises(ValueError):
        TokenRingDriver(kernel, adapter, TokenRingDriverConfig())


def test_pointer_passing_transmit_records_no_driver_copy():
    bed, tx, rx = build_pair()
    rx.tr_driver.register_ctms_sink(
        lambda f: True, lambda f, region, chain: iter([chain and chain.free()] and [])
    )
    send_from_driver(bed, tx, 0, make_ctmsp_frame())  # chain=None
    bed.run(100 * MS)
    assert tx.tr_driver.stats_tx_packets == 1
    assert (Region.SYSTEM, Region.IO_CHANNEL) not in tx.kernel.ledger.cpu


def test_header_only_copy_mode():
    bed, tx, rx = build_pair(
        tx_cfg=TokenRingDriverConfig(tx_copy_header_only=True)
    )
    rx.tr_driver.register_ctms_sink(
        lambda f: True, lambda f, region, chain: iter([chain and chain.free()] and [])
    )
    send_from_driver(bed, tx, 2000, make_ctmsp_frame())
    bed.run(100 * MS)
    rec = tx.kernel.ledger.cpu.get((Region.SYSTEM, Region.IO_CHANNEL))
    assert rec is not None and rec.bytes <= 32


def test_purge_retransmit_reissues_from_buffer():
    bed, tx, rx = build_pair(
        tx_cfg=TokenRingDriverConfig(purge_retransmit=True)
    )
    got = []
    rx.tr_driver.register_ctms_sink(
        lambda f: True,
        lambda f, region, chain: iter(
            [got.append(f.payload.packet_no), chain and chain.free()] and []
        ),
    )
    send_from_driver(bed, tx, 2000, make_ctmsp_frame(packet_no=5))
    # Purge while the frame is in flight (serialization takes ~4ms, and the
    # adapter command path ~1.4ms + fetch ~2.3ms before that).
    bed.sim.schedule(9 * MS, bed.ring.purge)
    bed.run(SEC)
    assert tx.tr_driver.stats_retransmits == 1
    assert got == [5]  # delivered on the second attempt


def test_tx_queue_depth_statistics():
    bed, tx, rx = build_pair()
    rx.tr_driver.register_ctms_sink(
        lambda f: True, lambda f, region, chain: iter([chain and chain.free()] and [])
    )
    for i in range(4):
        send_from_driver(bed, tx, 2000, make_ctmsp_frame(packet_no=i))
    bed.run(500 * MS)
    assert tx.tr_driver.stats_tx_queue_peak >= 3
    assert tx.tr_driver.tx_queue_depth == 0
