"""Unit tests for the VCA driver: ioctls, source, sink, stock modes."""

import pytest

from repro.core.ctmsp import CTMSP_HEADER_BYTES, CTMSPPacket
from repro.core.session import CTMSSession
from repro.drivers.vca import VCADriverConfig
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.hardware import calibration
from repro.hardware.memory import Region
from repro.sim.units import MS, SEC, US
from repro.unix.process import UserProcess


def build_session(tx_vca=None, rx_vca=None, seed=3):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx", vca=tx_vca or VCADriverConfig()))
    rx = bed.add_host(HostConfig(name="rx", vca=rx_vca or VCADriverConfig()))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    return bed, tx, rx, session


def test_bind_computes_header_once_for_connection_lifetime():
    bed, tx, rx, session = build_session()
    bed.run(2 * SEC)
    assert tx.vca_driver.header is not None
    assert tx.vca_driver.header.src == "tx"
    assert tx.vca_driver.header.dst == "rx"
    # Every packet reuses the same frozen header object.
    assert session.stats.delivered > 100


def test_source_numbers_packets_sequentially():
    bed, tx, rx, session = build_session()
    bed.run(1 * SEC)
    built = tx.vca_driver.stats_packets_built
    assert built == tx.vca_adapter.stats_interrupts
    tracker = session.sink_tracker
    assert tracker.packets_ok == session.stats.delivered


def test_source_without_bind_raises():
    bed = _Testbed(seed=1, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx"))
    bed.add_host(HostConfig(name="anchor"))

    def start_only(proc):
        yield from proc.ioctl("vca0", "CTMS_START")

    UserProcess(tx.kernel, "bad-setup").start(start_only)
    with pytest.raises(RuntimeError):
        bed.run(50 * MS)


def test_unknown_ioctl_rejected():
    bed = _Testbed(seed=1, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx"))
    bed.add_host(HostConfig(name="anchor"))
    failures = []

    def body(proc):
        try:
            yield from proc.ioctl("vca0", "NOT_AN_IOCTL")
        except ValueError as exc:
            failures.append(str(exc))

    UserProcess(tx.kernel, "prober").start(body)
    bed.run(50 * MS)
    assert failures and "NOT_AN_IOCTL" in failures[0]


def test_sink_copy_to_device_pays_pio():
    bed, tx, rx, session = build_session(
        rx_vca=VCADriverConfig(sink_copy_to_device=True)
    )
    bed.run(1 * SEC)
    rec = rx.kernel.ledger.cpu.get((Region.SYSTEM, Region.ADAPTER))
    assert rec is not None
    assert rec.copies == session.stats.delivered


def test_sink_drop_mode_pays_no_device_copy():
    bed, tx, rx, session = build_session(
        rx_vca=VCADriverConfig(sink_copy_to_device=False)
    )
    bed.run(1 * SEC)
    assert (Region.SYSTEM, Region.ADAPTER) not in rx.kernel.ledger.cpu


def test_duplicate_packets_ignored_by_sink():
    bed, tx, rx, session = build_session()
    bed.run(500 * MS)
    pkt = CTMSPPacket(1, 0, 7, 100)

    def deliver_dup():
        gen = rx.vca_driver.ctms_deliver(
            pkt.to_frame() if pkt.header else _fake_frame(pkt), Region.SYSTEM, None
        )
        yield from gen

    def _fake_frame(p):
        from repro.ring.frames import Frame

        return Frame(src="tx", dst="rx", info_bytes=100, protocol="ctmsp", payload=p)

    rx.machine.cpu.spawn_base(deliver_dup())
    bed.run(10 * MS)
    assert rx.vca_driver.stream_stats.duplicates >= 1


def test_mbuf_exhaustion_drops_period():
    bed, tx, rx, session = build_session()
    bed.run(100 * MS)
    hold = []
    while True:
        try:
            hold.append(tx.kernel.mbufs.try_alloc(is_cluster=True))
        except Exception:
            break
    bed.run(50 * MS)
    assert tx.vca_driver.stats_drops_no_mbufs >= 1
    for m in hold:
        m.free()
    # Stream recovers once buffers return.
    before = session.stats.delivered
    bed.run(200 * MS)
    assert session.stats.delivered > before


def test_custom_packet_size_streams():
    cfg = VCADriverConfig(packet_bytes=1000, device_bytes_per_period=984)
    bed, tx, rx, session = build_session(tx_vca=cfg)
    bed.run(1 * SEC)
    assert session.stats.delivered > 50
    # 1000-byte information field per packet.
    per_packet = session.stats.bytes_delivered / session.stats.delivered
    assert per_packet == 1000


def test_direct_to_buffer_source_mode():
    cfg = VCADriverConfig(source_direct_to_buffer=True)
    bed, tx, rx, session = build_session(tx_vca=cfg)
    bed.run(1 * SEC)
    assert session.stats.delivered > 50
    # The staging copy goes device -> IO Channel Memory, and the driver
    # performs no mbuf-to-buffer copy.
    assert (Region.ADAPTER, Region.IO_CHANNEL) in tx.kernel.ledger.cpu
    assert (Region.SYSTEM, Region.IO_CHANNEL) not in tx.kernel.ledger.cpu


def test_per_packet_header_recompute_costs_time():
    quick = build_session(tx_vca=VCADriverConfig(precomputed_header=True))
    slow = build_session(tx_vca=VCADriverConfig(precomputed_header=False))
    for bed, *_ in (quick, slow):
        bed.run(2 * SEC)
    fast_lat = quick[3].stats.min_latency_ns()
    slow_lat = slow[3].stats.min_latency_ns()
    assert slow_lat >= fast_lat + calibration.TR_HEADER_COMPUTE_COST - 20 * US


def test_stock_mode_read_blocks_until_interrupt():
    bed = _Testbed(seed=4, mac_utilization=0.0)
    cfg = VCADriverConfig(packet_bytes=500, device_bytes_per_period=500)
    host = bed.add_host(HostConfig(name="solo", vca=cfg))
    bed.add_host(HostConfig(name="anchor"))
    reads = []

    def reader(proc):
        yield from proc.ioctl("vca0", "STOCK_START")
        for _ in range(3):
            got = yield from proc.read("vca0", 500)
            reads.append((bed.sim.now, got))

    UserProcess(host.kernel, "reader").start(reader)
    bed.run(100 * MS)
    assert len(reads) == 3
    assert reads[0][0] >= 12 * MS  # first data appears at the first tick
    assert all(n == 500 for _t, n in reads)


def test_stock_mode_overrun_when_reader_is_slow():
    bed = _Testbed(seed=4, mac_utilization=0.0)
    cfg = VCADriverConfig(packet_bytes=2000, device_bytes_per_period=2000)
    host = bed.add_host(HostConfig(name="solo", vca=cfg))
    bed.add_host(HostConfig(name="anchor"))

    def sleepy_reader(proc):
        yield from proc.ioctl("vca0", "STOCK_START")
        while True:
            yield from proc.sleep_ns(100 * MS)  # far too slow
            yield from proc.read("vca0", 2000)

    UserProcess(host.kernel, "reader").start(sleepy_reader)
    bed.run(1 * SEC)
    # FIFO depth is 2 (4KB card / 2000B buffers): overruns accumulate.
    assert host.vca_driver.stats_stock_overruns > 50


def test_stock_write_copies_to_device():
    bed = _Testbed(seed=4, mac_utilization=0.0)
    host = bed.add_host(HostConfig(name="solo"))
    bed.add_host(HostConfig(name="anchor"))
    done = []

    def writer(proc):
        n = yield from proc.write("vca0", 1000)
        done.append(n)

    UserProcess(host.kernel, "writer").start(writer)
    bed.run(50 * MS)
    assert done == [1000]
    assert (Region.SYSTEM, Region.ADAPTER) in host.kernel.ledger.cpu
    assert (Region.USER, Region.SYSTEM) in host.kernel.ledger.cpu
