"""Tests for the disk-backed CTMS source (the media file server role)."""

import pytest

from repro.drivers.disk_source import DiskSourceConfig, DiskStreamSource
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.hardware.disk import DiskAdapter
from repro.hardware.memory import Region
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess


def build_server(config=None, seed=12):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    server = bed.add_host(HostConfig(name="server"))
    client = bed.add_host(HostConfig(name="client"))
    disk = DiskAdapter(server.machine)
    server.machine.add_adapter("hd0", disk)
    source = DiskStreamSource(
        server.kernel, disk, server.tr_driver, config
    )

    # Register the client's VCA as the sink.
    def sink_setup(proc):
        yield from proc.ioctl(
            "vca0", "CTMS_ATTACH_SINK", {"tr_driver": client.tr_driver}
        )

    UserProcess(client.kernel, "sink-setup").start(sink_setup)

    def server_setup(proc):
        yield from source.bind("client", client.vca_driver.device_number)
        source.start()

    UserProcess(server.kernel, "server-setup").start(server_setup)
    return bed, server, client, source


def test_disk_stream_delivers_at_rate():
    bed, server, client, source = build_server()
    bed.run(5 * SEC)
    stats = client.vca_driver.stream_stats
    assert stats.delivered > 390  # ~83/s for 5s minus startup
    assert client.vca_driver.tracker.lost_packets == 0
    assert source.stats_underruns == 0
    # ~166 KB/s on the wire.
    assert stats.throughput_bytes_per_sec() == pytest.approx(166_666, rel=0.02)


def test_disk_stream_is_zero_copy_on_the_cpu():
    """Disk DMA -> IOCM staging -> adapter DMA: no bulk CPU copies."""
    bed, server, client, source = build_server()
    bed.run(3 * SEC)
    ledger = server.kernel.ledger
    bulk_cpu = [
        rec for rec in ledger.cpu.values()
        if rec.copies and rec.bytes / rec.copies >= 1000
    ]
    assert bulk_cpu == []
    # The data moved by DMA twice: disk->staging is internal to the disk
    # model; staging->adapter is the recorded fetch.
    assert (Region.IO_CHANNEL, Region.ADAPTER) in ledger.dma


def test_disk_reads_track_consumption():
    bed, server, client, source = build_server()
    bed.run(5 * SEC)
    # ~166KB/s consumed -> roughly one 16KB read per 98ms.
    expected = 5 * 166_666 / 16_384
    assert source.stats_disk_reads == pytest.approx(expected, rel=0.25)


def test_underrun_when_disk_is_hammered():
    """A competing random-access disk user starves the read-ahead."""
    bed, server, client, source = build_server(
        config=DiskSourceConfig(readahead_low_water=4_000, readahead_high_water=8_000)
    )
    disk = server.machine.adapters["hd0"]
    rng = server.machine.rng.get("hammer")

    # Closed-loop competing disk user: one random 24KB read at a time.
    def hammer():
        def next_read():
            bed.sim.schedule(2 * MS, hammer)
            yield from iter(())

        disk.read(rng.randrange(0, 10**8), 24_576, Region.SYSTEM, next_read)

    bed.sim.schedule(1 * SEC, hammer)
    bed.run(6 * SEC)
    assert source.stats_underruns > 0
    # Underruns are late periods, not sequence gaps: the sink sees long
    # inter-arrival stalls (the audible glitches) but no missing numbers.
    assert client.vca_driver.tracker.gaps == 0
    stalls = [g for g in client.vca_driver.stream_stats.inter_arrival_ns() if g > 20 * MS]
    assert stalls


def test_deeper_readahead_survives_the_same_hammering():
    bed, server, client, source = build_server(
        config=DiskSourceConfig(
            readahead_low_water=48_000, readahead_high_water=96_000
        )
    )
    disk = server.machine.adapters["hd0"]
    rng = server.machine.rng.get("hammer")

    # Closed-loop competing disk user: one random 24KB read at a time.
    def hammer():
        def next_read():
            bed.sim.schedule(2 * MS, hammer)
            yield from iter(())

        disk.read(rng.randrange(0, 10**8), 24_576, Region.SYSTEM, next_read)

    bed.sim.schedule(1 * SEC, hammer)
    bed.run(6 * SEC)
    assert source.stats_underruns == 0


def test_start_before_bind_raises():
    bed = _Testbed(seed=1, mac_utilization=0.0)
    server = bed.add_host(HostConfig(name="server"))
    bed.add_host(HostConfig(name="anchor"))
    disk = DiskAdapter(server.machine)
    source = DiskStreamSource(server.kernel, disk, server.tr_driver)
    with pytest.raises(RuntimeError):
        source.start()


def test_tiny_packet_config_rejected():
    bed = _Testbed(seed=1, mac_utilization=0.0)
    server = bed.add_host(HostConfig(name="server"))
    bed.add_host(HostConfig(name="anchor"))
    disk = DiskAdapter(server.machine)
    with pytest.raises(ValueError):
        DiskStreamSource(
            server.kernel, disk, server.tr_driver, DiskSourceConfig(packet_bytes=8)
        )
