"""Property-based fuzzing of the substrate invariants.

These are the invariants the whole reproduction rests on: the ring delivers
every frame exactly once (absent purges) in per-sender order; the CPU
eventually runs everything and its books balance; the PC/AT reconstruction
is faithful within its documented error budget for *any* emission pattern.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cpu import CPU, Exec, SetSpl
from repro.hardware.parallel_port import ParallelPort
from repro.measure.pcat import PcatTimestamper
from repro.ring.frames import Frame
from repro.ring.network import TokenRing
from repro.ring.station import RingStation
from repro.sim import MS, SEC, Simulator, US
from repro.sim.rng import RandomStreams

# ---------------------------------------------------------------------------
# Token Ring invariants
# ---------------------------------------------------------------------------

frame_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),      # sender index
        st.integers(min_value=0, max_value=3),      # receiver index
        st.integers(min_value=1, max_value=3000),   # info bytes
        st.integers(min_value=0, max_value=6),      # priority
        st.integers(min_value=0, max_value=50),     # send delay (ms)
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(frame_plan)
def test_ring_delivers_every_unicast_frame_exactly_once(plan):
    sim = Simulator()
    ring = TokenRing(sim)
    stations = [RingStation(ring, f"s{i}") for i in range(4)]
    received: list[tuple[str, int]] = []
    for s in stations:
        s.receive = lambda f, addr=s.address: received.append((addr, f.frame_id))
    sent_ids = []
    for sender, receiver, nbytes, priority, delay in plan:
        if sender == receiver:
            continue
        frame = Frame(
            src=f"s{sender}", dst=f"s{receiver}", info_bytes=nbytes,
            priority=priority, protocol="ip",
        )
        sent_ids.append((f"s{receiver}", frame.frame_id))
        sim.schedule(delay * MS, stations[sender].transmit, frame)
    sim.run(until=10 * SEC)
    # Exactly-once delivery to exactly the right station.
    assert sorted(received) == sorted(sent_ids)


@settings(max_examples=25, deadline=None)
@given(frame_plan)
def test_ring_preserves_per_sender_order_at_equal_priority(plan):
    sim = Simulator()
    ring = TokenRing(sim)
    stations = [RingStation(ring, f"s{i}") for i in range(4)]
    received: dict[str, list[int]] = {}
    sent: dict[str, list[int]] = {}
    seq = 0
    for s in stations:
        def recv(f, addr=s.address):
            received.setdefault(f.src, []).append(f.payload)

        s.receive = recv
    entries = []
    for position, (sender, receiver, nbytes, _priority, delay) in enumerate(plan):
        if sender == receiver:
            continue
        seq += 1
        frame = Frame(
            src=f"s{sender}", dst=f"s{receiver}", info_bytes=nbytes,
            priority=0, protocol="ip", payload=seq,
        )
        entries.append((delay, position, f"s{sender}", seq))
        sim.schedule(delay * MS, stations[sender].transmit, frame)
    sim.run(until=10 * SEC)
    # Expected per-sender order is enqueue order: by (delay, schedule call
    # order) -- the calendar is FIFO within an instant.
    for src, seqs in received.items():
        expected = [s for d, p, who, s in sorted(entries) if who == src]
        assert seqs == expected, src


@settings(max_examples=25, deadline=None)
@given(frame_plan, st.integers(min_value=1, max_value=9))
def test_ring_busy_time_never_exceeds_elapsed(plan, horizon_sec):
    sim = Simulator()
    ring = TokenRing(sim)
    stations = [RingStation(ring, f"s{i}") for i in range(4)]
    for sender, receiver, nbytes, priority, delay in plan:
        if sender == receiver:
            continue
        sim.schedule(
            delay * MS,
            stations[sender].transmit,
            Frame(src=f"s{sender}", dst=f"s{receiver}", info_bytes=nbytes,
                  priority=priority),
        )
    sim.run(until=horizon_sec * SEC)
    sim.run()  # drain
    assert 0.0 <= ring.utilization(sim.now or 1) <= 1.0


# ---------------------------------------------------------------------------
# CPU invariants
# ---------------------------------------------------------------------------

cpu_plan = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=7),       # IRQ level
        st.integers(min_value=1, max_value=2000),    # handler work (us)
        st.integers(min_value=0, max_value=30_000),  # raise time (us)
        st.integers(min_value=0, max_value=7),       # spl inside handler
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=50, deadline=None)
@given(cpu_plan, st.lists(st.integers(min_value=1, max_value=5000), max_size=5))
def test_cpu_runs_everything_and_books_balance(irqs, base_jobs):
    sim = Simulator()
    cpu = CPU(sim, irq_entry_overhead=10 * US, context_switch_cost=20 * US)
    finished = []

    def make_handler(tag, work, spl):
        def handler():
            old = yield SetSpl(max(spl, cpu.spl))
            yield Exec(work * US)
            yield SetSpl(old)
            finished.append(tag)

        return handler

    for i, (level, work, at, spl) in enumerate(irqs):
        sim.schedule(
            at * US, cpu.raise_irq, level, make_handler(("irq", i), work, spl)
        )

    def make_job(tag, work):
        def job():
            yield Exec(work * US)
            finished.append(tag)

        return job

    for i, work in enumerate(base_jobs):
        cpu.spawn_base(make_job(("base", i), work)())

    sim.run(until=5 * SEC)
    sim.run()
    # Everything ran exactly once.
    expected = [("irq", i) for i in range(len(irqs))]
    expected += [("base", i) for i in range(len(base_jobs))]
    assert sorted(map(str, finished)) == sorted(map(str, expected))
    # The processor priority unwound completely.
    assert cpu.spl == 0
    assert cpu.running is None
    # Accounting sanity.
    assert 0 <= cpu.stats_busy_ns <= sim.now + 1
    assert cpu.stats_irq_count == len(irqs)


@settings(max_examples=30, deadline=None)
@given(cpu_plan)
def test_higher_level_irqs_never_wait_for_lower_handlers(irqs):
    """A level-7 IRQ raised while spl==0 must start within entry overhead."""
    sim = Simulator()
    cpu = CPU(sim, irq_entry_overhead=10 * US, context_switch_cost=0)
    started = []

    def make_handler(work):
        def handler():
            yield Exec(work * US)

        return handler

    for level, work, at, _spl in irqs:
        if level == 7:
            continue  # keep level 7 exclusive for the probe
        sim.schedule(at * US, cpu.raise_irq, min(level, 6), make_handler(work))

    def probe():
        started.append(sim.now)
        yield Exec(1 * US)

    probe_at = 15 * MS
    sim.schedule(probe_at, cpu.raise_irq, 7, probe)
    sim.run(until=5 * SEC)
    sim.run()
    assert started
    # Level 7 preempts anything lower; only entry overhead may intervene
    # (no handler in the plan raises spl).
    assert started[0] - probe_at <= 10 * US + 1


# ---------------------------------------------------------------------------
# PC/AT reconstruction
# ---------------------------------------------------------------------------

emission_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),        # channel
        st.integers(min_value=1, max_value=400),      # gap to next (ms)
        st.integers(min_value=0, max_value=127),      # value
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(emission_plan)
def test_pcat_reconstruction_error_is_bounded_for_any_pattern(plan):
    sim = Simulator()
    tool = PcatTimestamper(sim, RandomStreams(9))
    tool.start()
    ports = [ParallelPort(sim, f"p{i}") for i in range(3)]
    for i, port in enumerate(ports):
        tool.connect(i, port)
    truth: list[tuple[int, int, int]] = []
    t = 0
    for channel, gap_ms, value in plan:
        t += gap_ms * MS
        truth.append((channel, t, value))
        sim.schedule(t, ports[channel].emit, value)
    sim.run(until=t + SEC)
    channels = tool.reconstruct()
    for channel in range(3):
        expected = [(tt, v) for (c, tt, v) in truth if c == channel]
        got = channels[channel]
        assert len(got) == len(expected)
        for (measured_t, measured_v), (true_t, true_v) in zip(got, expected):
            assert measured_v == true_v
            err = measured_t - true_t
            assert -4 * US <= err <= 125 * US  # the paper's error budget
