"""Tests for the live presentation machine."""

import pytest

from repro.core.presentation import PresentationMachine
from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim import MS, SEC, Simulator


RATE = 2000 / 0.012  # the prototype stream


def feed(player, sim, times, nbytes=2000):
    for t in times:
        sim.schedule(t, player.on_packet, nbytes)


def test_steady_stream_plays_without_glitches():
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=6000, capacity_bytes=12000
    )
    times = [i * 12 * MS for i in range(100)]
    feed(player, sim, times)
    sim.schedule(times[-1] + 1 * MS, player.stop)  # end of the media
    sim.run(until=2 * SEC)
    assert player.is_glitch_free()
    assert player.playout_started_at is not None
    # Nearly everything buffered has been played out.
    assert player.bytes_played > 90 * 2000


def test_stall_produces_a_timed_glitch():
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=4000, capacity_bytes=8000
    )
    times = [i * 12 * MS for i in range(10)]
    # 200 ms outage, then the stream resumes.
    times += [times[-1] + 200 * MS + i * 12 * MS for i in range(10)]
    feed(player, sim, times)
    sim.schedule(times[-1] + 1 * MS, player.stop)
    sim.run(until=2 * SEC)
    assert player.glitch_count == 1
    glitch = player.glitches[0]
    # The glitch begins when the 4000-byte buffer runs out, ~24ms after the
    # last pre-outage packet.
    assert times[9] < glitch.at_ns < times[9] + 40 * MS
    assert glitch.starved_for_ns > 100 * MS


def test_glitch_detected_live_by_deadline_not_only_on_next_arrival():
    """The deadline timer notices starvation even with no further input."""
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=2000, capacity_bytes=8000
    )
    feed(player, sim, [0, 12 * MS])
    sim.run(until=1 * SEC)  # stream stops entirely
    assert player.glitch_count == 1


def test_overflow_drops_counted():
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=2000, capacity_bytes=4000
    )
    for _ in range(3):
        player.on_packet(2000)
    assert player.overflow_drops == 1


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PresentationMachine(sim, 0, 100, 200)
    with pytest.raises(ValueError):
        PresentationMachine(sim, 100.0, 300, 200)


def test_attached_to_a_real_session():
    bed = _Testbed(seed=17, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx"))
    rx = bed.add_host(HostConfig(name="rx"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    player = PresentationMachine(
        bed.sim, 1984 / 0.012, prefill_bytes=6000, capacity_bytes=12000
    )
    bed.run(100 * MS)  # let the sink handles install
    player.attach_to_vca(rx.vca_driver)
    bed.run(5 * SEC)
    session.stop()
    player.stop()
    assert session.stats.delivered > 400
    assert player.is_glitch_free()
    assert player.peak_level <= 12000


def test_attached_player_hears_the_purge_outage():
    bed = _Testbed(seed=17, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx"))
    rx = bed.add_host(HostConfig(name="rx"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    player = PresentationMachine(
        bed.sim, 1984 / 0.012, prefill_bytes=4000, capacity_bytes=10000
    )
    bed.run(100 * MS)
    player.attach_to_vca(rx.vca_driver)
    bed.run(1 * SEC)
    # A 10-purge burst: ~100ms of silence -- audible with a 4KB prefill.
    for i in range(10):
        bed.sim.schedule(i * 10 * MS, bed.ring.purge)
    bed.run(2 * SEC)
    assert player.glitch_count >= 1


def test_skip_ahead_bounds_a_long_starvation():
    """Graceful degradation: one bounded dropout instead of an endless stall."""
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=4000, capacity_bytes=8000,
        skip_ahead_after_ns=50 * MS,
    )
    times = [i * 12 * MS for i in range(10)]
    # A 400 ms outage, then the stream returns.
    resume = times[-1] + 400 * MS
    times += [resume + i * 12 * MS for i in range(20)]
    feed(player, sim, times)
    sim.schedule(times[-1] + 1 * MS, player.stop)
    sim.run(until=2 * SEC)
    assert player.glitch_count == 1
    # The glitch closed at the skip window, not at the 400 ms outage length.
    assert player.glitches[0].starved_for_ns == 50 * MS
    assert player.skips == 1
    assert player.skipped_ns > 300 * MS
    # After the skip, playback resumed at the live edge without new glitches.
    assert player.bytes_played > 20 * 2000


def test_short_starvation_does_not_skip():
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=4000, capacity_bytes=8000,
        skip_ahead_after_ns=200 * MS,
    )
    times = [i * 12 * MS for i in range(10)]
    times += [times[-1] + 100 * MS + i * 12 * MS for i in range(10)]
    feed(player, sim, times)
    sim.schedule(times[-1] + 1 * MS, player.stop)
    sim.run(until=2 * SEC)
    assert player.skips == 0
    assert player.glitch_count == 1
    assert player.glitches[0].starved_for_ns < 200 * MS


def test_skip_ahead_disabled_by_default():
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=4000, capacity_bytes=8000
    )
    feed(player, sim, [i * 12 * MS for i in range(5)])
    sim.run(until=2 * SEC)
    assert player.skips == 0
    assert player.skipped_ns == 0


def test_skip_ahead_window_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        PresentationMachine(
            sim, RATE, prefill_bytes=100, capacity_bytes=200,
            skip_ahead_after_ns=0,
        )


def test_stop_during_skip_accounts_the_skipped_time():
    sim = Simulator()
    player = PresentationMachine(
        sim, RATE, prefill_bytes=4000, capacity_bytes=8000,
        skip_ahead_after_ns=50 * MS,
    )
    feed(player, sim, [i * 12 * MS for i in range(10)])  # then silence
    sim.schedule(1 * SEC, player.stop)
    sim.run(until=2 * SEC)
    assert player.skips == 1
    assert player.glitches[0].starved_for_ns == 50 * MS
    assert player.skipped_ns > 500 * MS
