"""Tests for the session control plane: ledger, admission, shed, failover.

Policy arithmetic (the CTMSP numbers): one stream's gross wire rate is
2000 bytes per 12 ms VCA period = 166,667 B/s; the 4 Mbit ring budgets
500,000 x 0.85 = 425,000 B/s -- so two streams commit and a third queues.
"""

import pytest

from repro.core.control import (
    BandwidthLedger,
    ControlPlaneConfig,
    FailoverRecord,
    ManagedSession,
    SessionControlPlane,
    stream_gross_rate_bytes_per_sec,
)
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim.units import MS, SEC


def _bed(servers=("server-a", "server-b"), clients=("c1", "c2", "c3")):
    bed = _Testbed(seed=1)
    for name in servers:
        bed.add_host(HostConfig(name=name, vca_slots=2))
    for name in clients:
        bed.add_host(HostConfig(name=name))
    return bed


def _plane(bed, config=None, slots=1):
    plane = SessionControlPlane(bed, config=config)
    for name in ("server-a", "server-b"):
        plane.register_server(name, slots=slots)
    return plane


# ----------------------------------------------------------------------
# rate arithmetic and the ledger
# ----------------------------------------------------------------------
def test_stream_gross_rate_is_the_ctmsp_wire_rate():
    # 2000 bytes every 12 ms -> 166,667 B/s (rounded).
    assert stream_gross_rate_bytes_per_sec() == 166_667


def test_ring_budget_admits_two_streams_not_three():
    config = ControlPlaneConfig()
    budget = config.ring_budget_bytes_per_sec()
    rate = config.session_rate_bytes_per_sec
    assert budget == 425_000
    assert 2 * rate <= budget < 3 * rate


def test_ledger_commit_release_roundtrip():
    ledger = BandwidthLedger(ring_budget_bytes_per_sec=425_000)
    ledger.add_server("s", ["vca0", "vca1"], budget_bytes_per_sec=400_000)
    slot = ledger.commit("s", 166_667)
    assert slot == "vca0"  # sorted free-slot order
    assert ledger.server_committed("s") == 166_667
    assert ledger.ring_committed_bytes_per_sec == 166_667
    ledger.release("s", slot, 166_667)
    assert ledger.server_committed("s") == 0
    assert ledger.ring_committed_bytes_per_sec == 0
    assert ledger.commit("s", 1) == "vca0"  # slot returned to the pool


def test_ledger_server_room_caps_on_slots_and_budget():
    ledger = BandwidthLedger(ring_budget_bytes_per_sec=10**9)
    ledger.add_server("s", ["vca0"], budget_bytes_per_sec=200_000)
    assert ledger.server_has_room("s", 166_667)
    ledger.commit("s", 166_667)
    # Slot exhausted even though some budget remains.
    assert not ledger.server_has_room("s", 1)


# ----------------------------------------------------------------------
# admission policy
# ----------------------------------------------------------------------
def test_two_admit_third_queues_on_ring_capacity():
    bed = _bed()
    plane = _plane(bed)
    a = plane.submit("c1")
    b = plane.submit("c2")
    c = plane.submit("c3")
    assert (a.decision, b.decision, c.decision) == ("admit", "admit", "queue")
    assert c.decision_reason == "ring segment at committed capacity"
    # Placement spreads: least-committed, ties by name.
    assert a.server == "server-a"
    assert b.server == "server-b"


def test_one_session_per_client_rejected():
    bed = _bed()
    plane = _plane(bed)
    plane.submit("c1")
    dup = plane.submit("c1")
    assert dup.decision == "reject"
    assert "already has a session" in dup.decision_reason


def test_queue_bounded_then_rejects():
    bed = _bed(clients=tuple(f"c{i}" for i in range(1, 8)))
    plane = _plane(
        bed, config=ControlPlaneConfig(max_queue_depth=2)
    )
    decisions = [plane.submit(f"c{i}").decision for i in range(1, 7)]
    assert decisions == ["admit", "admit", "queue", "queue", "reject", "reject"]


def test_departure_pumps_the_queue_fifo():
    bed = _bed()
    plane = _plane(bed).start()
    a = plane.submit("c1")
    plane.submit("c2")
    c = plane.submit("c3")
    assert c.state == "queued"
    bed.run(500 * MS)
    plane.release(a)
    assert c.state == "establishing"
    bed.run(500 * MS)
    assert c.state == "streaming"
    assert c.server == "server-a"  # inherited the freed capacity


def test_established_sessions_stream_and_deliver():
    bed = _bed()
    plane = _plane(bed).start()
    a = plane.submit("c1")
    bed.run(SEC)
    assert a.state == "streaming"
    assert a.sink_tracker.delivered > 50
    assert a.sink_tracker.lost_packets == 0
    plane.stop()


# ----------------------------------------------------------------------
# shedding policy
# ----------------------------------------------------------------------
def test_select_victims_sheds_newest_lowest_priority_first():
    bed = _bed()
    plane = _plane(bed, config=ControlPlaneConfig())
    old = plane.submit("c1", priority=1)
    young = plane.submit("c2", priority=0)
    bed.run(SEC)
    assert old.state == young.state == "streaming"
    victims = plane.select_victims()
    # Lowest priority first; the high-priority elder is protected.
    assert victims == [young]


def test_select_victims_never_sheds_a_lone_stream():
    bed = _bed()
    plane = _plane(bed)
    plane.submit("c1")
    bed.run(SEC)
    assert plane.select_victims() == []


def test_shed_and_watermark_resume_roundtrip():
    bed = _bed()
    config = ControlPlaneConfig(shed_resume_hold_ticks=2)
    plane = _plane(bed, config=config)
    plane.submit("c1")
    young = plane.submit("c2")
    bed.run(SEC)
    # Drive the watermark logic directly (the tick would overwrite the
    # measured utilization with the real one).
    plane.measured_utilization = config.shed_high_watermark + 0.05
    plane._shed_step()
    assert young.state == "shed"
    assert young.server is None
    assert plane.ledger.ring_committed_bytes_per_sec == 166_667
    resume_from = young.sheds  # one shed recorded
    assert resume_from == 1
    # Hysteresis: two ticks below the low watermark resume it.
    plane.measured_utilization = config.shed_low_watermark - 0.1
    plane._shed_step()
    assert young.state == "shed"
    plane._shed_step()
    assert young.state == "establishing"
    bed.run(SEC)
    assert young.state == "streaming"


# ----------------------------------------------------------------------
# failover bookkeeping
# ----------------------------------------------------------------------
class _StubStats:
    def __init__(self, arrivals):
        self.arrival_times = arrivals


class _StubSession:
    def __init__(self, arrivals):
        self.stats = _StubStats(arrivals)


def test_failover_window_closes_from_arrival_evidence():
    ms = ManagedSession(control_id=1, client="c1", priority=0,
                        rate_bytes_per_sec=166_667, submitted_at_ns=0)
    ms.session = _StubSession([100, 200, 900])
    ms.failovers.append(
        FailoverRecord(control_id=1, from_server="server-a",
                       detected_at_ns=400, gap_start_ns=200)
    )
    # resumed_at_ns is unset; the window end derives from the first
    # arrival after detection.
    assert ms.failover_windows() == [(200, 900)]


def test_failover_window_stays_open_without_evidence():
    ms = ManagedSession(control_id=1, client="c1", priority=0,
                        rate_bytes_per_sec=166_667, submitted_at_ns=0)
    ms.session = _StubSession([100, 200])
    ms.failovers.append(
        FailoverRecord(control_id=1, from_server="server-a",
                       detected_at_ns=400, gap_start_ns=200)
    )
    assert ms.failover_windows() == [(200, None)]


def test_snapshot_counts_decisions():
    bed = _bed()
    plane = _plane(bed)
    plane.submit("c1")
    plane.submit("c2")
    plane.submit("c3")
    snap = plane.snapshot()
    assert snap["admitted"] == 2
    assert snap["queued"] == 1
    assert snap["rejected"] == 0


def test_observer_is_optional_and_duck_typed():
    calls = []

    class Observer:
        def count(self, name, n=1):
            calls.append(("count", name, n))

        def gauge(self, name, value):
            calls.append(("gauge", name, value))

        def span(self, event, t_ns, **fields):
            calls.append(("span", event))

    bed = _bed()
    plane = SessionControlPlane(bed, observer=Observer())
    plane.register_server("server-a", slots=1)
    plane.submit("c1")
    assert ("count", "control.sessions.admitted", 1) in calls
    assert any(c[0] == "span" and c[1] == "admit" for c in calls)
