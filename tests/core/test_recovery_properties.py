"""Property tests for SequenceTracker: gap accounting and failover resume.

The failover path trusts two invariants unconditionally: ``missing()`` is
exactly the sorted complement of what arrived (and its length always equals
``lost_packets``), and ``resume_point()`` is the number a replica can splice
at without creating an artificial gap or a duplicate.  Hypothesis drives
both over arbitrary arrival orders.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.recovery import DUPLICATE, OK, SequenceTracker

# Arrival sequences drawn from a small number space so duplicates, gaps,
# and late fills all occur often.
arrivals = st.lists(st.integers(min_value=0, max_value=60), max_size=120)


def _replay(seq):
    tracker = SequenceTracker()
    for n in seq:
        tracker.record(n)
    return tracker


@given(arrivals)
def test_missing_is_the_sorted_complement_of_arrivals(seq):
    tracker = _replay(seq)
    if not seq:
        assert tracker.missing() == ()
        return
    seen = set(seq)
    first = seq[0]
    expected = sorted(
        n for n in range(first, tracker.highest_seen + 1) if n not in seen
    )
    assert list(tracker.missing()) == expected


@given(arrivals)
def test_missing_length_always_equals_lost_packets(seq):
    tracker = SequenceTracker()
    for n in seq:
        tracker.record(n)
        assert len(tracker.missing()) == tracker.lost_packets


@given(arrivals)
def test_resume_point_is_high_water_plus_one(seq):
    tracker = _replay(seq)
    if not seq:
        assert tracker.resume_point() == 0
    else:
        assert tracker.resume_point() == tracker.highest_seen + 1


@given(arrivals)
def test_resuming_at_resume_point_is_seamless(seq):
    """A replica numbering from resume_point() splices with no new loss."""
    tracker = _replay(seq)
    lost_before = tracker.lost_packets
    start = tracker.resume_point()
    for n in range(start, start + 5):
        assert tracker.record(n) == OK
    assert tracker.lost_packets == lost_before


@given(arrivals)
def test_duplicates_never_mutate_loss_accounting(seq):
    tracker = _replay(seq)
    before = (tracker.missing(), tracker.lost_packets, tracker.delivered)
    for n in set(seq):
        if n not in tracker.missing():
            assert tracker.record(n) == DUPLICATE
    assert (tracker.missing(), tracker.lost_packets, tracker.delivered) == before


@given(arrivals)
def test_delivered_plus_lost_covers_the_number_line(seq):
    """Every number from first arrival to high water is delivered or lost.

    Numbers below the first arrival don't count -- the sink attached
    mid-stream, and anything earlier is classified as a duplicate.
    """
    tracker = _replay(seq)
    if not seq:
        return
    span = tracker.highest_seen - seq[0] + 1
    assert tracker.delivered + tracker.lost_packets == span
