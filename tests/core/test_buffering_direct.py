"""Tests for playout buffering and the Section 2 copy-count model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buffering import PlayoutBuffer, required_buffer_bytes
from repro.core.direct import TransferPath, paper_claims, predicted_copies
from repro.sim.units import MS, SEC


# ---------------------------------------------------------------------------
# buffer sizing (Section 6)
# ---------------------------------------------------------------------------

def test_paper_buffer_conclusion_under_25kb():
    """150 KB/s across the 130 ms worst case needs < 25 KB of buffer."""
    need = required_buffer_bytes(150_000, 130 * MS)
    assert need < 25_000


def test_40ms_worst_case_needs_much_less():
    need = required_buffer_bytes(150_000, 40 * MS)
    assert need <= 10_000


def test_sizing_validation():
    with pytest.raises(ValueError):
        required_buffer_bytes(0, 10 * MS)
    with pytest.raises(ValueError):
        required_buffer_bytes(100, -1)


def test_playout_steady_stream_never_glitches():
    buf = PlayoutBuffer(
        capacity_bytes=25_000,
        rate_bytes_per_sec=2000 / 0.012,
        prefill_bytes=6000,
    )
    arrivals = [i * 12 * MS for i in range(200)]
    buf.run(arrivals)
    buf.finish(arrivals[-1] + 12 * MS)
    assert buf.glitches == 0
    assert buf.overflow_drops == 0


def test_playout_130ms_stall_survives_with_paper_buffer():
    rate = 2000 / 0.012
    capacity = required_buffer_bytes(rate, 130 * MS)
    buf = PlayoutBuffer(
        capacity_bytes=capacity, rate_bytes_per_sec=rate, prefill_bytes=capacity
    )
    arrivals = [i * 12 * MS for i in range(50)]
    stall_start = arrivals[-1]
    arrivals += [stall_start + 130 * MS + i * 12 * MS for i in range(50)]
    buf.run(arrivals)
    buf.finish(arrivals[-1])
    assert buf.glitches == 0


def test_playout_underrun_detected_without_enough_buffer():
    rate = 2000 / 0.012
    buf = PlayoutBuffer(
        capacity_bytes=4000, rate_bytes_per_sec=rate, prefill_bytes=2000
    )
    arrivals = [0, 12 * MS, 24 * MS, 24 * MS + 130 * MS]
    buf.run(arrivals)
    assert buf.glitches >= 1


def test_playout_overflow_counted():
    buf = PlayoutBuffer(capacity_bytes=2000, rate_bytes_per_sec=10.0)
    buf.run([0, 1, 2])
    assert buf.overflow_drops == 2


def test_playout_rejects_time_travel():
    buf = PlayoutBuffer(capacity_bytes=10_000, rate_bytes_per_sec=100.0)
    buf.offer(10 * MS)
    with pytest.raises(ValueError):
        buf.offer(5 * MS)


@given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=200))
def test_required_buffer_monotone_in_delay(rate_kb, delay_ms):
    rate = rate_kb * 1000
    small = required_buffer_bytes(rate, delay_ms * MS)
    large = required_buffer_bytes(rate, (delay_ms + 50) * MS)
    assert large >= small
    assert small >= 2000  # always at least one packet of slack


# ---------------------------------------------------------------------------
# copy-count model (Section 2)
# ---------------------------------------------------------------------------

def test_paper_headline_numbers():
    claims = paper_claims()
    assert claims["user_process_max_total"] == 6  # "as many as six"
    assert claims["user_process_min_total"] == 4  # "as few as four"
    assert claims["user_process_cpu"] == 4  # "always four copies by the CPU"
    assert claims["direct_cpu"] == 2  # two copies eliminated
    assert claims["pointer_passing_cpu"] == 0  # all CPU copies eliminated


def test_user_process_always_four_cpu_copies():
    """Section 2: "There will always be four copies made by the CPU"."""
    for src_dma in (True, False):
        for dst_dma in (True, False):
            model = predicted_copies(TransferPath.USER_PROCESS, src_dma, dst_dma)
            assert model.cpu_copies == 4
            # Total = 4 CPU + one DMA per DMA-capable device (4..6).
            assert model.total_copies == 4 + int(src_dma) + int(dst_dma)


def test_single_dma_device_pointer_passing_eliminates_one_copy():
    both = predicted_copies(TransferPath.POINTER_PASSING, True, True)
    one = predicted_copies(TransferPath.POINTER_PASSING, True, False)
    direct = predicted_copies(TransferPath.DIRECT_DRIVER, True, False)
    assert both.cpu_copies == 0
    assert direct.cpu_copies - one.cpu_copies == 1


def test_direct_driver_eliminates_exactly_two_cpu_copies():
    for src_dma in (True, False):
        for dst_dma in (True, False):
            user = predicted_copies(TransferPath.USER_PROCESS, src_dma, dst_dma)
            direct = predicted_copies(TransferPath.DIRECT_DRIVER, src_dma, dst_dma)
            assert user.cpu_copies - direct.cpu_copies == 2
            assert user.dma_copies == direct.dma_copies
