"""Session establishment under fire: retry, backoff, clean timeout."""

import pytest

from repro.core.session import CTMSSession, SessionEstablishTimeout
from repro.drivers.token_ring import CTMS_CONTROL_PROTOCOL
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.faults import FaultInjector, FaultPlan
from repro.sim.units import MS, SEC


def bed_with_control_loss(seed, loss_window_ns):
    bed = _Testbed(seed=seed)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    if loss_window_ns:
        FaultInjector(
            bed,
            FaultPlan().frame_loss(
                0, duration_ns=loss_window_ns, protocol=CTMS_CONTROL_PROTOCOL
            ),
        ).arm()
    session = CTMSSession(tx.kernel, rx.kernel)
    return bed, session


def test_clean_network_establishes_on_the_first_attempt():
    bed, session = bed_with_control_loss(seed=3, loss_window_ns=0)
    established = session.establish()
    bed.run(1 * SEC)
    assert established.triggered and established.ok
    assert session.setup_attempts == 1
    assert session.error is None
    assert session.sink_tracker.delivered > 0


def test_transient_control_loss_retries_then_succeeds():
    bed, session = bed_with_control_loss(seed=3, loss_window_ns=25 * MS)
    established = session.establish()
    bed.run(2 * SEC)
    assert established.triggered and established.ok
    assert session.setup_attempts >= 2
    assert session.error is None
    # The stream actually started after the handshake finally completed.
    assert session.sink_tracker.delivered > 0
    assert session.sink_tracker.lost_packets == 0


def test_permanent_control_loss_times_out_cleanly():
    bed, session = bed_with_control_loss(seed=3, loss_window_ns=10 * SEC)
    established = session.establish()
    bed.run(5 * SEC)
    assert established.triggered and not established.ok
    assert isinstance(established.value, SessionEstablishTimeout)
    assert session.error is established.value
    assert session.setup_attempts == session.setup_max_attempts
    # No data ever flowed: the failure is a clean no-stream, not a half-start.
    assert session.sink_tracker.delivered == 0
    assert "no setup-ack" in str(session.error)


def test_retries_back_off_exponentially():
    bed = _Testbed(seed=3)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    FaultInjector(
        bed,
        FaultPlan().frame_loss(
            0, duration_ns=10 * SEC, protocol=CTMS_CONTROL_PROTOCOL
        ),
    ).arm()
    attempts = []
    bed.ring.monitors.append(
        lambda frame, t, status: attempts.append(t)
        if frame.protocol == CTMS_CONTROL_PROTOCOL
        else None
    )
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(3 * SEC)
    assert len(attempts) == session.setup_max_attempts
    waits = [b - a for a, b in zip(attempts, attempts[1:])]
    # Doubling up to the cap: each retry waits at least as long as the
    # previous one (modulo wire jitter), later waits dwarf the first.
    assert all(b >= a - 2 * MS for a, b in zip(waits, waits[1:]))
    assert waits[-1] > waits[0] * 4
    assert waits[-1] <= session.setup_backoff_cap_ns + 50 * MS


def test_timeout_deadline_bounds_the_whole_handshake():
    bed = _Testbed(seed=3)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    FaultInjector(
        bed,
        FaultPlan().frame_loss(
            0, duration_ns=10 * SEC, protocol=CTMS_CONTROL_PROTOCOL
        ),
    ).arm()
    session = CTMSSession(
        tx.kernel, rx.kernel, setup_timeout_ns=100 * MS, setup_max_attempts=50
    )
    established = session.establish()
    bed.run(2 * SEC)
    assert established.triggered and not established.ok
    # The deadline fired long before 50 attempts could run.
    assert session.setup_attempts < 50


def test_establishment_delay_does_not_shift_the_stream():
    """Retries delay the start but the 12 ms tick grid stays absolute."""
    bed, session = bed_with_control_loss(seed=3, loss_window_ns=25 * MS)
    session.establish()
    bed.run(2 * SEC)
    gaps = session.stats.inter_arrival_ns()
    assert gaps, "stream must have flowed"
    # No 12 ms tick was ever skipped: delivery jitter, but no lost period.
    assert max(gaps) < 24 * MS


@pytest.mark.parametrize(
    "kwargs",
    [
        {"setup_timeout_ns": 0},
        {"setup_max_attempts": 0},
        {"setup_backoff_ns": 0},
    ],
)
def test_invalid_setup_parameters_rejected(kwargs):
    bed = _Testbed(seed=1)
    tx = bed.add_host(HostConfig(name="transmitter"))
    rx = bed.add_host(HostConfig(name="receiver"))
    with pytest.raises(ValueError):
        CTMSSession(tx.kernel, rx.kernel, **kwargs)
