"""Detailed tests for CTMS session establishment (the ioctl choreography)."""

import pytest

from repro.core.session import CTMSSession
from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.sim.units import MS, SEC


def build(seed=23):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    tx = bed.add_host(HostConfig(name="tx"))
    rx = bed.add_host(HostConfig(name="rx"))
    return bed, tx, rx


def test_established_event_fires_after_both_sides_are_wired():
    bed, tx, rx = build()
    session = CTMSSession(tx.kernel, rx.kernel)
    established = session.establish()
    assert not established.triggered
    bed.run(100 * MS)
    assert established.triggered
    # Sink handles were installed before the source started producing.
    assert rx.tr_driver.ctms_classify is not None
    assert tx.vca_driver.header is not None


def test_source_binds_to_the_sinks_device_number():
    bed, tx, rx = build()
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(100 * MS)
    assert tx.vca_driver._dst_device == rx.vca_driver.device_number
    assert tx.vca_driver.header.dst == "rx"
    assert tx.vca_driver.header.src == "tx"


def test_no_packets_leave_before_the_sink_is_ready():
    """The source waits for the sink's handles: zero unclaimed packets."""
    bed, tx, rx = build()
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(2 * SEC)
    assert rx.tr_driver.stats_rx_ctmsp_unclaimed == 0
    assert session.stats.delivered > 100


def test_header_computed_exactly_once_per_connection():
    bed, tx, rx = build()
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(2 * SEC)
    header_before = tx.vca_driver.header
    bed.run(2 * SEC)
    # Same frozen header object across the whole stream.
    assert tx.vca_driver.header is header_before


def test_stop_and_restart_stream():
    bed, tx, rx = build()
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(1 * SEC)
    session.stop()
    delivered = session.stats.delivered
    bed.run(1 * SEC)
    assert session.stats.delivered <= delivered + 2
    # Restart: the DSP timer is re-armed; numbering continues.
    tx.vca_adapter.attach_handler(tx.vca_driver._source_interrupt_handler)
    tx.vca_adapter.start()
    bed.run(1 * SEC)
    assert session.stats.delivered > delivered + 50
    assert session.sink_tracker.duplicates == 0


def test_sessions_are_directional():
    """Establishing tx->rx does not make rx->tx work implicitly."""
    bed, tx, rx = build()
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(500 * MS)
    # The transmitter's own driver has no sink registered.
    assert tx.tr_driver.ctms_classify is None
