"""Tests for the jitter and worst-gap stream metrics."""

import pytest

from repro.core.ctmsp import standard_packet
from repro.core.stream import StreamStats
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_a as scenario_a
from repro.experiments.scenarios import test_case_b as scenario_b
from repro.sim.units import MS, SEC


def deliveries_at(times):
    stats = StreamStats()
    for i, t in enumerate(times):
        pkt = standard_packet(1, i, 7)
        pkt.born_at = t - 11 * MS
        stats.record_delivery(pkt, t)
    return stats


def test_perfect_stream_has_zero_jitter():
    stats = deliveries_at([i * 12 * MS for i in range(50)])
    assert stats.jitter_ns() == 0.0
    assert stats.worst_gap_ns() == 12 * MS


def test_jitter_grows_with_irregularity():
    regular = deliveries_at([i * 12 * MS for i in range(50)])
    jittery = deliveries_at(
        [i * 12 * MS + (i % 3) * 2 * MS for i in range(50)]
    )
    assert jittery.jitter_ns() > regular.jitter_ns()


def test_worst_gap_finds_the_stall():
    times = [i * 12 * MS for i in range(10)]
    times += [times[-1] + 130 * MS + i * 12 * MS for i in range(10)]
    stats = deliveries_at(times)
    assert stats.worst_gap_ns() == 130 * MS


def test_empty_and_single_delivery():
    assert StreamStats().jitter_ns() == 0.0
    assert StreamStats().worst_gap_ns() == 0
    one = deliveries_at([5 * MS])
    assert one.jitter_ns() == 0.0


def test_loaded_ring_has_more_jitter_than_quiet():
    quiet = run_scenario(scenario_a(duration_ns=8 * SEC, seed=2))
    loaded = run_scenario(scenario_b(duration_ns=8 * SEC, seed=2))
    assert loaded.stream.jitter_ns() > 2 * quiet.stream.jitter_ns()


def test_soft_errors_flow_through_the_scenario():
    scenario = scenario_a(duration_ns=6 * SEC, seed=2)
    scenario = scenario.variant("soft", soft_errors_per_hour=3600.0)  # 1/s
    result = run_scenario(scenario)
    assert result.testbed.monitor.stats_soft_errors >= 2
    # Soft errors purge the ring; some packets may be lost, and each loss
    # is a single-packet gap the sink rides through.
    tracker = result.tracker
    assert tracker.gaps == tracker.lost_packets
    assert result.stream.worst_gap_ns() >= 12 * MS
