"""Tests for the CTMSP packet format."""

import pytest

from repro.core.ctmsp import (
    CTMSP_HEADER_BYTES,
    CTMSP_RING_PRIORITY,
    CTMSPPacket,
    PrecomputedHeader,
    standard_packet,
)


def header():
    return PrecomputedHeader(src="tx", dst="rx")


def test_standard_packet_is_2000_bytes_total():
    pkt = standard_packet(stream_id=1, packet_no=0, dst_device=7, header=header())
    assert pkt.info_bytes == 2000
    assert pkt.data_bytes == 2000 - CTMSP_HEADER_BYTES


def test_to_frame_uses_precomputed_header_and_priority():
    pkt = standard_packet(1, 5, 7, header=header())
    frame = pkt.to_frame()
    assert frame.src == "tx" and frame.dst == "rx"
    assert frame.priority == CTMSP_RING_PRIORITY
    assert frame.protocol == "ctmsp"
    assert frame.payload is pkt
    assert frame.info_bytes == 2000


def test_to_frame_without_header_is_an_error():
    pkt = CTMSPPacket(stream_id=1, packet_no=0, dst_device=7, data_bytes=100)
    with pytest.raises(ValueError):
        pkt.to_frame()


def test_wire_packet_number_is_low_7_bits():
    pkt = CTMSPPacket(1, 0x1FF, 7, 100, header=header())
    assert pkt.wire_packet_number == 0x7F
    assert CTMSPPacket(1, 130, 7, 100).wire_packet_number == 2


def test_validation():
    with pytest.raises(ValueError):
        CTMSPPacket(1, -1, 7, 100)
    with pytest.raises(ValueError):
        CTMSPPacket(1, 0, 7, -5)


def test_ring_priority_override():
    pkt = standard_packet(1, 0, 7, header=header())
    assert pkt.to_frame(ring_priority=0).priority == 0
