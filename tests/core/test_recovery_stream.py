"""Tests for sequence tracking and stream statistics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.ctmsp import standard_packet
from repro.core.recovery import DUPLICATE, GAP, OK, REORDERED, SequenceTracker
from repro.core.stream import StreamStats
from repro.sim.units import MS, SEC


def test_in_order_stream_is_all_ok():
    tracker = SequenceTracker()
    assert [tracker.record(i) for i in range(5)] == [OK] * 5
    assert tracker.delivered == 5
    assert tracker.lost_packets == 0


def test_stream_may_start_at_any_number():
    tracker = SequenceTracker()
    assert tracker.record(1000) == OK
    assert tracker.record(1001) == OK


def test_single_loss_detected_as_gap():
    tracker = SequenceTracker()
    tracker.record(0)
    assert tracker.record(2) == GAP
    assert tracker.lost_packets == 1
    assert tracker.gaps == 1
    # Stream continues normally afterwards.
    assert tracker.record(3) == OK


def test_duplicate_ignored():
    tracker = SequenceTracker()
    tracker.record(0)
    tracker.record(1)
    assert tracker.record(1) == DUPLICATE
    assert tracker.duplicates == 1
    assert tracker.delivered == 2


def test_late_fill_of_gap_counts_as_reordered():
    tracker = SequenceTracker()
    tracker.record(0)
    tracker.record(2)  # gap: 1 missing
    assert tracker.record(1) == REORDERED
    assert tracker.lost_packets == 0
    assert tracker.reordered == 1


def test_loss_fraction():
    tracker = SequenceTracker()
    tracker.record(0)
    tracker.record(4)  # 3 lost
    assert tracker.loss_fraction() == 3 / 5


@given(st.integers(min_value=1, max_value=300))
def test_gapless_streams_never_report_loss(n):
    tracker = SequenceTracker()
    for i in range(n):
        assert tracker.record(i) == OK
    assert tracker.loss_fraction() == 0.0


@given(st.sets(st.integers(min_value=0, max_value=200), min_size=1))
def test_monotone_subsequence_loss_accounting(present):
    """Delivering any ordered subset: lost = skipped numbers inside range."""
    tracker = SequenceTracker()
    ordered = sorted(present)
    for n in ordered:
        tracker.record(n)
    expected_lost = (ordered[-1] - ordered[0] + 1) - len(ordered)
    assert tracker.lost_packets == expected_lost
    assert tracker.delivered == len(ordered)


def test_stream_stats_latency_and_throughput():
    stats = StreamStats()
    for i in range(3):
        pkt = standard_packet(1, i, 7)
        pkt.born_at = i * 12 * MS
        stats.record_delivery(pkt, i * 12 * MS + 11 * MS)
    assert stats.delivered == 3
    assert stats.max_latency_ns() == 11 * MS
    assert stats.inter_arrival_ns() == [12 * MS, 12 * MS]
    # 2 packets * 2000B over 24ms window after the first arrival.
    assert stats.throughput_bytes_per_sec() > 100_000


def test_stream_stats_duplicate_not_counted():
    stats = StreamStats()
    pkt = standard_packet(1, 0, 7)
    stats.record_delivery(pkt, 5 * MS)
    stats.record_delivery(pkt, 6 * MS, outcome="duplicate")
    assert stats.delivered == 1
    assert stats.duplicates == 1


def test_stream_stats_empty():
    stats = StreamStats()
    assert stats.throughput_bytes_per_sec() == 0.0
    assert stats.max_latency_ns() == 0
    assert stats.inter_arrival_ns() == []


def test_missing_always_mirrors_lost_packets():
    """Gap-fill accounting: the missing set and the loss count move together."""
    tracker = SequenceTracker()
    tracker.record(0)
    tracker.record(5)                 # 1-4 missing
    assert tracker.missing() == (1, 2, 3, 4)
    assert tracker.lost_packets == 4
    assert tracker.record(2) == REORDERED
    assert tracker.missing() == (1, 3, 4)
    assert tracker.lost_packets == 3
    # Filling the same hole twice is a duplicate, not a double decrement.
    assert tracker.record(2) == DUPLICATE
    assert tracker.missing() == (1, 3, 4)
    assert tracker.lost_packets == 3


@given(st.permutations(list(range(12))))
def test_any_arrival_order_balances_the_books(order):
    """Every packet delivered exactly once, in any order: no residual loss."""
    tracker = SequenceTracker()
    tracker.record(0)                 # pin the stream start
    for n in order:
        tracker.record(n)
    assert tracker.lost_packets == len(tracker.missing())
    assert tracker.missing() == ()
    assert tracker.lost_packets == 0
    assert tracker.delivered == 12
    assert tracker.loss_fraction() == 0.0


@given(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=120)
)
def test_missing_invariant_under_arbitrary_streams(packet_nos):
    """len(missing()) == lost_packets after every single record call."""
    tracker = SequenceTracker()
    for n in packet_nos:
        tracker.record(n)
        assert len(tracker.missing()) == tracker.lost_packets
        assert all(m < tracker.next_expected for m in tracker.missing())
