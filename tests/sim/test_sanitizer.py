"""The same-instant race detector and the kernel's tie-break guarantees.

Covers the sim kernel's determinism contract from both sides: identical
seeds reproduce identical event traces (the property the whole testbed
rests on), and the sanitizer's seeded tie-break permutation flags a model
whose end state depends on same-instant FIFO order.
"""

import pytest

from repro.sim import (
    OrderRaceError,
    RandomStreams,
    SimulationError,
    Simulator,
    check_tiebreak_invariance,
)


# ----------------------------------------------------------------------
# trace determinism: same seed, same schedule
# ----------------------------------------------------------------------
def _traced_run(seed: int) -> list[tuple[int, str]]:
    """A stochastic toy workload driven entirely by named seeded streams."""
    sim = Simulator(record_trace=True)
    rng = RandomStreams(seed).get("toy.workload")

    def tick(i: int) -> None:
        if i < 200:
            sim.schedule(rng.randrange(1, 5_000), tick, i + 1)
        if rng.random() < 0.3:
            sim.schedule(rng.randrange(0, 100), noop)

    def noop() -> None:
        pass

    sim.schedule(0, tick, 0)
    sim.run()
    return sim.trace


@pytest.mark.parametrize("seed", [0, 1, 7, 12345])
def test_identical_seeds_produce_identical_event_traces(seed):
    first = _traced_run(seed)
    second = _traced_run(seed)
    assert len(first) > 200
    assert first == second


def test_different_seeds_produce_different_traces():
    assert _traced_run(1) != _traced_run(2)


def test_trace_off_by_default():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    assert sim.trace == []


# ----------------------------------------------------------------------
# tie-break policies
# ----------------------------------------------------------------------
def test_unknown_tiebreak_rejected():
    with pytest.raises(SimulationError):
        Simulator(tiebreak="chronological")


def test_random_tiebreak_is_deterministic_per_seed():
    def run(tb_seed: int) -> list[tuple[int, str]]:
        sim = Simulator(tiebreak="random", tiebreak_seed=tb_seed, record_trace=True)
        order: list[int] = []
        for i in range(20):
            sim.schedule(10, order.append, i)
        sim.run()
        return order

    assert run(3) == run(3)
    assert run(3) != run(4)  # a different permutation of the same instant


def test_random_tiebreak_actually_permutes():
    sim = Simulator(tiebreak="random", tiebreak_seed=1)
    order: list[int] = []
    for i in range(20):
        sim.schedule(10, order.append, i)
    sim.run()
    assert sorted(order) == list(range(20))
    assert order != list(range(20))


def test_random_tiebreak_preserves_causality():
    """An entry scheduled *during* an instant still runs after its cause."""
    for tb_seed in range(10):
        sim = Simulator(tiebreak="random", tiebreak_seed=tb_seed)
        log: list[str] = []

        def parent() -> None:
            log.append("parent")
            sim.schedule(0, child)

        def child() -> None:
            assert "parent" in log
            log.append("child")

        for _ in range(5):
            sim.schedule(10, parent)
        sim.run()
        assert log.count("parent") == 5 and log.count("child") == 5


def test_random_tiebreak_never_reorders_across_instants():
    sim = Simulator(tiebreak="random", tiebreak_seed=9, record_trace=True)
    order: list[int] = []
    for i in range(50):
        sim.schedule(i, order.append, i)
    sim.run()
    assert order == list(range(50))


# ----------------------------------------------------------------------
# the sanitizer itself
# ----------------------------------------------------------------------
def _race_free_model(sim: Simulator):
    """Same-instant writers that commute: end state is order-invariant."""
    state = {"total": 0}
    for i in range(8):
        sim.schedule(100, lambda i=i: state.__setitem__("total", state["total"] + i))
    return lambda: state["total"]


def _racy_model(sim: Simulator):
    """Deliberate order dependence: last same-instant writer wins."""
    state = {"value": 0}
    for i in range(8):
        sim.schedule(100, lambda i=i: state.__setitem__("value", i))
    return lambda: state["value"]


def test_sanitizer_passes_race_free_model():
    fingerprint = check_tiebreak_invariance(_race_free_model, trials=8, seed=0)
    assert fingerprint == sum(range(8))


def test_sanitizer_flags_order_dependent_model():
    with pytest.raises(OrderRaceError) as excinfo:
        check_tiebreak_invariance(_racy_model, trials=8, seed=0)
    err = excinfo.value
    assert err.reference == 7  # FIFO: last scheduled writer wins
    assert err.divergences, "no divergent trial recorded"
    assert "same-instant event-order race" in str(err)


def test_sanitizer_divergence_is_replayable():
    """The reported tie-break seed reproduces the losing order exactly."""
    with pytest.raises(OrderRaceError) as excinfo:
        check_tiebreak_invariance(_racy_model, trials=4, seed=2)
    divergence = excinfo.value.divergences[0]
    sim = Simulator(tiebreak="random", tiebreak_seed=divergence.tiebreak_seed)
    fingerprint = _racy_model(sim)
    sim.run()
    assert fingerprint() == divergence.fingerprint


def test_sanitizer_is_deterministic():
    def capture():
        try:
            check_tiebreak_invariance(_racy_model, trials=6, seed=11)
        except OrderRaceError as err:
            return [(d.tiebreak_seed, d.fingerprint) for d in err.divergences]
        return []

    first, second = capture(), capture()
    assert first and first == second


def test_sanitizer_respects_until():
    def late_model(sim: Simulator):
        state = {"value": 0}
        sim.schedule(100, lambda: state.__setitem__("value", 1))
        sim.schedule(100, lambda: state.__setitem__("value", 2))
        return lambda: state["value"]

    # Horizon before the racy instant: nothing ran, states agree.
    assert check_tiebreak_invariance(late_model, trials=4, seed=0, until=50) == 0
    with pytest.raises(OrderRaceError):
        check_tiebreak_invariance(late_model, trials=8, seed=0, until=200)


def test_sanitizer_rejects_zero_trials():
    with pytest.raises(ValueError):
        check_tiebreak_invariance(_race_free_model, trials=0)
