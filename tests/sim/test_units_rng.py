"""Tests for time units and deterministic random streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import MS, SEC, US, format_time, from_us, to_ms, to_us
from repro.sim.rng import RandomStreams
from repro.sim.units import DAY, HOUR, MINUTE, from_ms, from_sec, to_sec


def test_unit_ratios():
    assert US == 1_000
    assert MS == 1_000 * US
    assert SEC == 1_000 * MS
    assert MINUTE == 60 * SEC
    assert HOUR == 60 * MINUTE
    assert DAY == 24 * HOUR


def test_conversions_round_trip_exact_values():
    assert from_us(12.5) == 12_500
    assert from_ms(2.6) == 2_600_000
    assert from_sec(1.5) == 1_500_000_000
    assert to_us(2_600_000) == 2600.0
    assert to_ms(12_000_000) == 12.0
    assert to_sec(3 * SEC) == 3.0


@given(st.integers(min_value=0, max_value=10**15))
def test_format_time_always_has_unit_suffix(t):
    text = format_time(t)
    assert text.endswith(("ns", "us", "ms", "s"))


def test_format_time_examples():
    assert format_time(500) == "500ns"
    assert format_time(2_600_000) == "2600.0us"
    assert format_time(12_000_000) == "12.000ms"
    assert format_time(117 * 60 * SEC) == "7020.000s"


def test_streams_are_deterministic():
    a = RandomStreams(42).get("traffic")
    b = RandomStreams(42).get("traffic")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent_of_creation_order():
    one = RandomStreams(7)
    two = RandomStreams(7)
    one.get("x")  # creating x first must not perturb y
    ys_one = [one.get("y").random() for _ in range(3)]
    ys_two = [two.get("y").random() for _ in range(3)]
    assert ys_one == ys_two


def test_different_names_give_different_streams():
    streams = RandomStreams(0)
    assert streams.get("a").random() != streams.get("b").random()


def test_get_returns_same_stream_object():
    streams = RandomStreams(1)
    assert streams.get("s") is streams.get("s")


def test_fork_produces_independent_family():
    parent = RandomStreams(5)
    child = parent.fork("machine-0")
    assert child.get("x").random() != parent.get("x").random()
    # forks are themselves deterministic
    again = RandomStreams(5).fork("machine-0")
    assert again.get("x").random() == RandomStreams(5).fork("machine-0").get("x").random()


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_any_seed_name_pair_is_stable(seed, name):
    assert RandomStreams(seed).get(name).random() == RandomStreams(seed).get(name).random()
