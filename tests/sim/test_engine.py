"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    MS,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    US,
)


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in "abcd":
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == list("abcd")


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(300, fired.append, 2)
    sim.run(until=200)
    assert fired == [1]
    assert sim.now == 200
    sim.run(until=400)
    assert fired == [1, 2]
    assert sim.now == 400


def test_run_until_advances_clock_even_when_empty():
    sim = Simulator()
    sim.run(until=5 * MS)
    assert sim.now == 5 * MS


def test_cannot_schedule_into_the_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5, lambda: None)


def test_cancelled_handle_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, "x")
    sim.schedule(20, fired.append, "y")
    handle.cancel()
    sim.run()
    assert fired == ["y"]


def test_event_succeed_wakes_callbacks_once():
    sim = Simulator()
    got = []
    ev = sim.event("e")
    ev.add_callback(lambda e: got.append(e.value))
    sim.schedule(7, ev.succeed, 42)
    sim.run()
    assert got == [42]
    assert ev.triggered and ev.ok


def test_event_cannot_resolve_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_callback_on_already_triggered_event_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["late"]


def test_process_sequences_timeouts():
    sim = Simulator()
    trace = []

    def behaviour():
        trace.append(("start", sim.now))
        yield sim.timeout(10 * US)
        trace.append(("mid", sim.now))
        yield sim.timeout(5 * US)
        trace.append(("end", sim.now))
        return "done"

    proc = sim.process(behaviour())
    sim.run()
    assert trace == [("start", 0), ("mid", 10 * US), ("end", 15 * US)]
    assert proc.triggered and proc.value == "done"


def test_process_receives_event_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    sim.process(waiter())
    sim.schedule(3, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_processes_can_wait_on_processes():
    sim = Simulator()

    def child():
        yield sim.timeout(100)
        return 99

    def parent():
        value = yield sim.process(child())
        return value + 1

    proc = sim.process(parent())
    sim.run()
    assert proc.value == 100


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = sim.event()
    outcome = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            outcome.append(str(exc))

    sim.process(waiter())
    sim.schedule(1, ev.fail, ValueError("boom"))
    sim.run()
    assert outcome == ["boom"]


def test_kill_process_interrupts_wait():
    sim = Simulator()
    reached_end = []

    def behaviour():
        yield sim.timeout(1 * MS)
        reached_end.append(True)

    proc = sim.process(behaviour())
    sim.run(until=10)
    proc.kill()
    sim.run()
    assert not reached_end
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, ProcessKilled)


def test_killed_process_can_clean_up_and_return():
    sim = Simulator()
    cleanup = []

    def behaviour():
        try:
            yield sim.timeout(1 * MS)
        except ProcessKilled:
            cleanup.append("closed")
        return "graceful"

    proc = sim.process(behaviour())
    sim.run(until=10)
    proc.kill()
    sim.run()
    assert cleanup == ["closed"]
    assert proc.ok and proc.value == "graceful"


def test_process_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 5  # type: ignore[misc]

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_stale_wakeup_after_kill_is_ignored():
    # A timeout that fires after the process was killed must not resume it.
    sim = Simulator()

    def behaviour():
        yield sim.timeout(50)

    proc = sim.process(behaviour())
    sim.run(until=10)
    proc.kill()
    sim.run()  # the 50ns timeout still fires; must not blow up
    assert proc.triggered


def test_any_of_returns_first():
    sim = Simulator()
    a = sim.timeout(20, "a")
    b = sim.timeout(10, "b")
    got = []

    def waiter():
        ev, value = yield sim.any_of([a, b])
        got.append(value)

    sim.process(waiter())
    sim.run()
    assert got == ["b"]


def test_all_of_collects_values_in_order():
    sim = Simulator()
    a = sim.timeout(20, "a")
    b = sim.timeout(10, "b")
    got = []

    def waiter():
        values = yield sim.all_of([a, b])
        got.append(values)

    sim.process(waiter())
    sim.run()
    assert got == [["a", "b"]]
    assert sim.now == 20


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    done = []

    def waiter():
        values = yield sim.all_of([])
        done.append(values)

    sim.process(waiter())
    sim.run()
    assert done == [[]]


def test_any_of_detaches_from_losers():
    # Regression: losing events used to keep their on_fire callbacks (and
    # through them the combined event) alive forever.  Once the winner
    # resolves, the still-pending losers must hold no watcher callbacks.
    sim = Simulator()
    winner = sim.timeout(10)
    losers = [sim.event(name=f"loser-{i}") for i in range(3)]
    combined = sim.any_of([winner] + losers)
    sim.run()
    assert combined.triggered and combined.ok
    for loser in losers:
        assert not loser.triggered
        assert loser._callbacks == []


def test_all_of_detaches_on_failure():
    # Same leak on the all_of failure path: one failure resolves the
    # combination, so the events still pending must drop their callbacks.
    sim = Simulator()
    doomed = sim.event(name="doomed")
    pending = [sim.event(name=f"pending-{i}") for i in range(3)]
    combined = sim.all_of([doomed] + pending)
    sim.schedule(5, doomed.fail, RuntimeError("boom"))
    sim.run()
    assert combined.triggered and not combined.ok
    for ev in pending:
        assert not ev.triggered
        assert ev._callbacks == []


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    h.cancel()
    assert sim.peek() == 9


def test_process_is_named():
    sim = Simulator()

    def behaviour():
        yield sim.timeout(1)

    proc = sim.process(behaviour(), name="tx-path")
    assert isinstance(proc, Process)
    assert proc.name == "tx-path"
    sim.run()
