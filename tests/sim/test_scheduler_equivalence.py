"""Golden-trace equivalence between the calendar-queue and heapq backends.

The calendar queue (and the fused fast paths the default configuration
installs on top of it) must be *observationally identical* to the reference
single-heap backend: the same workload produces byte-identical
``(time, qualname)`` traces, the same final ``now`` and the same
``stats_events``.  Each workload below stresses a different ordering
hazard -- same-instant batches, cancellation/tombstones, random tie-break
jitter, and far timers that live in the calendar's overflow heap across
day-window slides.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.scheduler import COMPACT_MIN_TOMBSTONES
from repro.sim.units import MS, SEC, US


def _run(scheduler: str, builder, tiebreak: str = "fifo", until=None):
    sim = Simulator(
        tiebreak=tiebreak,
        tiebreak_seed=7,
        record_trace=True,
        scheduler=scheduler,
    )
    builder(sim)
    sim.run(until)
    return sim


def assert_backends_equivalent(builder, tiebreak="fifo", until=None):
    cal = _run("calendar", builder, tiebreak, until)
    heap = _run("heapq", builder, tiebreak, until)
    assert cal.trace == heap.trace
    assert cal.now == heap.now
    assert cal.stats_events == heap.stats_events
    assert cal.stats_events == len(cal.trace)


# ---------------------------------------------------------------------------
# workload builders (deterministic: all randomness from a fixed seed, and
# the assertion itself guarantees both backends see identical draw order)
# ---------------------------------------------------------------------------

def _same_instant_heavy(sim: Simulator) -> None:
    """Many entries per instant, with callbacks stacking more onto *now*."""
    rng = random.Random(1991)

    def burst(depth: int) -> None:
        if depth <= 0:
            return
        for _ in range(3):
            sim.schedule_fast(rng.choice((0, 0, 0, 10, 12 * US)), burst, depth - 1)

    for _ in range(25):
        sim.schedule(rng.choice((0, 0, 5 * US, 5 * US, MS)), burst, 3)


def _cancellation_heavy(sim: Simulator) -> None:
    """Enough cancellations to cross the compaction threshold mid-run."""
    rng = random.Random(404)
    handles = []

    def noop(i: int) -> None:
        # Late cancellations from inside the run: kill a band of handles
        # whose times are still in the future.
        if i == 40:
            for h in handles[150:290]:
                h.cancel()

    for i in range(420):
        handles.append(sim.schedule(rng.randrange(1, 80 * MS), noop, i))
    # Cancel more than COMPACT_MIN_TOMBSTONES up front so note_cancel()
    # actually triggers a compact() while entries are pending.
    assert len(handles) > 2 * COMPACT_MIN_TOMBSTONES
    for h in handles[: COMPACT_MIN_TOMBSTONES + 30]:
        h.cancel()


def _far_timer_mix(sim: Simulator) -> None:
    """Near traffic plus timers far beyond the calendar's day window.

    The default calendar covers 256 buckets x 2^24 ns (~4.3 s); entries at
    10 s / 60 s start in the overflow heap and must migrate into buckets
    as the window slides, interleaving correctly with the near stream.
    """
    rng = random.Random(77)

    def rearm(times_left: int) -> None:
        if times_left > 0:
            sim.schedule_fast(rng.randrange(1, 2 * MS), rearm, times_left - 1)

    for _ in range(10):
        sim.schedule_fast(rng.randrange(0, MS), rearm, 50)
    for far in (5 * SEC, 10 * SEC, 10 * SEC + 1, 60 * SEC):
        sim.at(far, rearm, 5)
        sim.schedule(far + rng.randrange(0, 3), rearm, 2)


def _timeout_and_combinators(sim: Simulator) -> None:
    """Event-layer traffic: timeouts, any_of/all_of, process steps."""

    def spin(n: int):
        for _ in range(n):
            yield sim.timeout(10 * US)
        first = sim.any_of([sim.timeout(MS), sim.timeout(2 * MS)])
        yield first
        yield sim.all_of([sim.timeout(30 * US), sim.timeout(30 * US)])

    for i in range(8):
        sim.process(spin(4 + i))


# ---------------------------------------------------------------------------
# the equivalence matrix
# ---------------------------------------------------------------------------

WORKLOADS = {
    "same_instant_heavy": _same_instant_heavy,
    "cancellation_heavy": _cancellation_heavy,
    "far_timer_mix": _far_timer_mix,
    "timeout_and_combinators": _timeout_and_combinators,
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_backends_identical_fifo(name):
    assert_backends_equivalent(WORKLOADS[name])


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_backends_identical_random_tiebreak(name):
    # Same tiebreak_seed on both sides: the jitter stream is drawn in
    # schedule-call order, which equivalence itself keeps identical.
    assert_backends_equivalent(WORKLOADS[name], tiebreak="random")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_backends_identical_bounded_runs(name):
    """run(until=...) in uneven slices exercises the cursor-rewind path."""

    def slices(scheduler: str):
        sim = Simulator(record_trace=True, scheduler=scheduler)
        WORKLOADS[name](sim)
        for bound in (3 * US, 777 * US, 15 * MS, 2 * SEC, 61 * SEC):
            sim.run(until=bound)
        sim.run()
        return sim

    cal = slices("calendar")
    heap = slices("heapq")
    assert cal.trace == heap.trace
    assert cal.now == heap.now
    assert cal.stats_events == heap.stats_events


def test_fused_fast_path_matches_push():
    """The fused schedule_fast/at_fast closures mirror CalendarScheduler.push.

    A calendar simulator whose fast paths are forced back to the plain
    ``push()``-based class methods must produce the same trace as the
    default (fused) configuration.
    """

    def build(sim: Simulator) -> None:
        _far_timer_mix(sim)
        _same_instant_heavy(sim)

    fused = _run("calendar", build)

    plain = Simulator(record_trace=True, scheduler="calendar")
    plain.schedule_fast = lambda d, fn, *a: Simulator.schedule_fast(plain, d, fn, *a)
    plain.at_fast = lambda t, fn, *a: Simulator.at_fast(plain, t, fn, *a)
    build(plain)
    plain.run()

    assert fused.trace == plain.trace
    assert fused.now == plain.now
    assert fused.stats_events == plain.stats_events
