"""SpanRecorder mechanics: lifecycle, queries, determinism invariants."""

import pytest

from repro.obs.span import (
    CATEGORIES,
    PointEvent,
    SpanRecorder,
    packet_key,
)
from repro.sim.engine import Simulator

pytestmark = pytest.mark.obs


def make_recorder():
    sim = Simulator()
    return sim, SpanRecorder(sim)


def test_begin_end_reads_sim_clock():
    sim, rec = make_recorder()
    rec.begin(("k",), "s", "disk", "tx/disk")
    sim.schedule(100, lambda: rec.end(("k",)))
    sim.run()
    (span,) = rec.spans
    assert (span.start_ns, span.end_ns, span.duration_ns) == (0, 100, 100)
    assert rec.open_count == 0


def test_end_unknown_key_is_ignored():
    _sim, rec = make_recorder()
    assert rec.end(("missing",)) is None
    assert rec.spans == []


def test_rebegin_replaces_and_counts_drop():
    _sim, rec = make_recorder()
    rec.begin(("k",), "first", "disk", "t")
    rec.begin(("k",), "second", "disk", "t")
    assert rec.stats_dropped_open == 1
    rec.end(("k",))
    assert [s.name for s in rec.spans] == ["second"]


def test_discard_abandons_open_span():
    _sim, rec = make_recorder()
    rec.begin(("k",), "s", "ring", "t")
    rec.discard(("k",))
    assert rec.open_count == 0
    assert rec.stats_dropped_open == 1
    assert rec.spans == []


def test_add_span_rejects_negative_duration():
    _sim, rec = make_recorder()
    with pytest.raises(ValueError):
        rec.add_span("s", "ring", "t", 100, 50)


def test_disabled_recorder_records_nothing():
    _sim, rec = make_recorder()
    rec.enabled = False
    rec.begin(("k",), "s", "disk", "t")
    rec.add_span("s", "ring", "t", 0, 1)
    rec.instant("i", "ring", "t")
    rec.point("p2", 1)
    assert rec.end(("k",)) is None
    assert (rec.spans, rec.instants, rec.points) == ([], [], [])


def test_point_records_point_event():
    sim, rec = make_recorder()
    sim.schedule(5, lambda: rec.point("p3", 42))
    sim.run()
    assert rec.points == [PointEvent("p3", 42, 5)]


def test_packet_waterfalls_group_and_sort():
    _sim, rec = make_recorder()
    rec.add_span("b", "ring", "t", 10, 20, stream_id=1, packet_no=0)
    rec.add_span("a", "disk", "t", 0, 5, stream_id=1, packet_no=0)
    rec.add_span("c", "disk", "t", 0, 9, stream_id=1, packet_no=1)
    rec.add_span("untagged", "disk", "t", 0, 1)
    falls = rec.packet_waterfalls()
    assert set(falls) == {(1, 0), (1, 1)}
    assert [s.name for s in falls[(1, 0)]] == ["a", "b"]


def test_worst_packet_spans_widest_interval():
    _sim, rec = make_recorder()
    rec.add_span("a", "disk", "t", 0, 5, stream_id=1, packet_no=0)
    rec.add_span("b", "ring", "t", 0, 50, stream_id=1, packet_no=1)
    key, group = rec.worst_packet()
    assert key == (1, 1)
    assert [s.name for s in group] == ["b"]


def test_categories_sorted_and_complete():
    _sim, rec = make_recorder()
    for i, cat in enumerate(CATEGORIES):
        rec.add_span("s", cat, "t", i, i + 1)
    assert rec.categories() == sorted(CATEGORIES)


def test_packet_key_is_stable():
    assert packet_key(1, 2, "ring") == ("pkt", 1, 2, "ring")
