"""Telemetry arithmetic: records, progress, ETA, spotlights.

Everything here is pure -- synthetic headers/records/telemetry lists in,
:class:`CampaignProgress` out.  No journal, no clock, no fleet: the
module under test never reads time itself (the fleet stamps ``ts``), so
its arithmetic is exactly testable with hand-picked timestamps.
"""

import pytest

from repro.obs import telemetry
from repro.obs.telemetry import (
    EVENT_CAMPAIGN_FINISHED,
    EVENT_CAMPAIGN_STARTED,
    EVENT_POINT_FINISHED,
    EVENT_POINT_RETRIED,
    EVENT_POINT_STARTED,
    events_of,
    is_telemetry,
    progress,
    record,
)


# ----------------------------------------------------------------------
# the record schema
# ----------------------------------------------------------------------
def test_record_carries_event_version_and_ts():
    rec = record(EVENT_POINT_STARTED, ts=10.5, point="p:1", seed=1, worker=2)
    assert rec["telemetry"] == EVENT_POINT_STARTED
    assert rec["v"] == telemetry.TELEMETRY_VERSION
    assert rec["ts"] == 10.5
    assert rec["point"] == "p:1"
    assert is_telemetry(rec)


def test_record_rejects_unknown_event():
    with pytest.raises(ValueError, match="unknown telemetry event"):
        record("point_teleported", ts=0.0)


def test_record_rejects_key_field():
    # "key" names point results in the journal; a telemetry record carrying
    # it would become visible to the merge and break the observe-only
    # contract, so the schema forbids it outright.
    with pytest.raises(ValueError, match="must not carry 'key'"):
        record(EVENT_POINT_STARTED, ts=0.0, key="p:1")


def test_is_telemetry_distinguishes_results_and_noise():
    assert not is_telemetry({"key": "p:1", "status": "ok"})
    assert not is_telemetry({"campaign": "abc", "total_points": 2})
    assert not is_telemetry(42)
    assert not is_telemetry(None)


def test_events_of_preserves_journal_order():
    recs = [
        record(EVENT_POINT_STARTED, ts=1.0, point="b"),
        record(EVENT_POINT_FINISHED, ts=2.0, point="b"),
        record(EVENT_POINT_STARTED, ts=3.0, point="a"),
    ]
    assert [r["point"] for r in events_of(recs, EVENT_POINT_STARTED)] == ["b", "a"]


# ----------------------------------------------------------------------
# progress arithmetic
# ----------------------------------------------------------------------
HEADER = {"campaign": "cafe", "kind": "chaos", "total_points": 4}


def _finished(point, ts, worker=0, wall_ms=100.0, events=None, seed=1):
    return record(
        EVENT_POINT_FINISHED,
        ts=ts,
        point=point,
        seed=seed,
        attempt=1,
        worker=worker,
        status="ok",
        wall_ms=wall_ms,
        events=events,
    )


def test_progress_counts_rate_and_eta():
    results = {
        "p:1": {"key": "p:1", "status": "ok"},
        "p:2": {"key": "p:2", "status": "ok"},
        "p:3": {"key": "p:3", "status": "failed"},
    }
    recs = [
        record(EVENT_CAMPAIGN_STARTED, ts=100.0, campaign="cafe", kind="chaos"),
        _finished("p:1", ts=101.0, events=500),
        _finished("p:2", ts=102.0, events=700),
    ]
    prog = progress(HEADER, results, recs)
    assert (prog.done, prog.failed, prog.pending) == (2, 1, 1)
    assert prog.elapsed_s == pytest.approx(2.0)
    assert prog.points_per_sec == pytest.approx(1.0)
    assert prog.eta_s == pytest.approx(1.0)  # 1 pending at 1 pt/s
    assert prog.sim_events == 1200
    assert prog.point_wall_ms == [100.0, 100.0]
    assert not prog.finished


def test_progress_now_ts_extends_the_elapsed_window():
    results = {"p:1": {"key": "p:1", "status": "ok"}}
    recs = [
        record(EVENT_CAMPAIGN_STARTED, ts=100.0, campaign="cafe", kind="chaos"),
        _finished("p:1", ts=101.0),
    ]
    cold = progress(HEADER, results, recs)
    live = progress(HEADER, results, recs, now_ts=105.0)
    assert cold.elapsed_s == pytest.approx(1.0)
    assert live.elapsed_s == pytest.approx(5.0)
    assert live.points_per_sec < cold.points_per_sec


def test_progress_finished_campaign():
    results = {f"p:{i}": {"key": f"p:{i}", "status": "ok"} for i in range(4)}
    recs = [
        record(EVENT_CAMPAIGN_STARTED, ts=10.0, campaign="cafe", kind="chaos"),
        *[_finished(f"p:{i}", ts=11.0 + i) for i in range(4)],
        record(EVENT_CAMPAIGN_FINISHED, ts=15.0, completed=4, failed=0),
    ]
    prog = progress(HEADER, results, recs)
    assert prog.finished
    assert prog.pending == 0
    assert "finished in 5.0s" in prog.render_line()


def test_progress_without_telemetry_is_counts_only():
    results = {"p:1": {"key": "p:1", "status": "ok"}}
    prog = progress(HEADER, results, [])
    assert prog.done == 1
    assert prog.elapsed_s == 0.0
    assert prog.points_per_sec == 0.0
    assert prog.eta_s is None
    assert "ETA --" in prog.render_line()


def test_telemetry_only_journal_never_divides_by_zero():
    # A freshly-started campaign: telemetry markers exist but nothing has
    # finished.  done == 0 must short-circuit the rate, and the render
    # must say ETA is unknowable rather than inventing one.
    recs = [
        record(EVENT_CAMPAIGN_STARTED, ts=100.0, campaign="cafe", kind="chaos"),
        record(EVENT_POINT_STARTED, ts=100.5, point="p:1", seed=1, worker=0),
    ]
    prog = progress(HEADER, {}, recs, now_ts=100.0)
    assert prog.has_telemetry
    assert prog.points_per_sec == 0.0
    assert prog.eta_s is None
    assert "ETA --" in prog.render_line()


def test_zero_width_telemetry_window_yields_no_rate():
    # One point finished, but every timestamp is identical (coarse clock):
    # elapsed 0 must not become a division by zero or an infinite rate.
    results = {"p:1": {"key": "p:1", "status": "ok"}}
    recs = [_finished("p:1", ts=100.0)]
    prog = progress(HEADER, results, recs)
    assert prog.has_telemetry
    assert prog.elapsed_s == 0.0
    assert prog.points_per_sec == 0.0
    assert prog.eta_s is None


def test_torn_header_total_yields_no_eta():
    # A journal whose header was torn mid-write loads with total 0; there
    # is nothing to count down to, so ETA stays None even with a rate.
    results = {"p:1": {"key": "p:1", "status": "ok"}}
    recs = [
        record(EVENT_CAMPAIGN_STARTED, ts=100.0, campaign="cafe", kind="chaos"),
        _finished("p:1", ts=101.0),
    ]
    prog = progress({"campaign": "cafe", "kind": "chaos"}, results, recs)
    assert prog.points_per_sec == pytest.approx(1.0)
    assert prog.eta_s is None


def test_has_telemetry_distinguishes_off_from_empty_window():
    results = {"p:1": {"key": "p:1", "status": "ok"}}
    off = progress(HEADER, results, [])
    on = progress(HEADER, results, [_finished("p:1", ts=100.0)])
    assert not off.has_telemetry
    assert on.has_telemetry


def test_retrying_counts_points_awaiting_backoff():
    recs = [
        record(EVENT_POINT_RETRIED, ts=1.0, point="p:1", seed=1, attempt=1,
               error="boom", backoff_s=0.5),
    ]
    prog = progress(HEADER, {}, recs)
    assert prog.retrying == 1
    # Once the point lands in results, it is no longer "retrying".
    prog = progress(HEADER, {"p:1": {"key": "p:1", "status": "ok"}}, recs)
    assert prog.retrying == 0


# ----------------------------------------------------------------------
# the spotlight
# ----------------------------------------------------------------------
def test_spotlight_prefers_longest_in_flight_point():
    recs = [
        record(EVENT_POINT_STARTED, ts=1.0, point="p:old", seed=7, worker=2),
        record(EVENT_POINT_STARTED, ts=5.0, point="p:new", seed=8, worker=1),
        _finished("p:done", ts=6.0, worker=1, wall_ms=4000.0),
    ]
    prog = progress(HEADER, {}, recs)
    assert prog.in_flight == 2
    spot = prog.spotlight
    assert spot is not None and spot.reason == "in-flight"
    assert (spot.worker, spot.point) == (2, "p:old")
    assert spot.seconds == pytest.approx(5.0)  # 6.0 (last ts) - 1.0
    assert "worker 2 on seed 7" in prog.render_line()


def test_spotlight_falls_back_to_slowest_worker():
    recs = [
        _finished("p:1", ts=2.0, worker=0, wall_ms=100.0),
        _finished("p:2", ts=3.0, worker=1, wall_ms=900.0),
    ]
    prog = progress(HEADER, {}, recs)
    spot = prog.spotlight
    assert spot is not None and spot.reason == "slowest"
    assert spot.worker == 1
    assert spot.seconds == pytest.approx(0.9)
    assert "slowest" in spot.render()


def test_spotlight_absent_without_telemetry():
    assert progress(HEADER, {}, []).spotlight is None
