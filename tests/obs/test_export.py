"""Chrome-trace export: golden bytes and Trace Event Format schema."""

import json
from pathlib import Path

import pytest

from repro.experiments.tracing import run_traced, trace_stock_vs_ctmsp
from repro.obs.export import chrome_trace, render_chrome_json
from repro.obs.span import CATEGORIES
from repro.sim.units import MS

pytestmark = pytest.mark.obs

GOLDEN = Path(__file__).parent / "golden_trace.json"

#: The seeded single-stream run the golden file pins.
GOLDEN_SEED = 7
GOLDEN_DURATION = 250 * MS


def golden_json() -> str:
    run = run_traced("ctmsp", seed=GOLDEN_SEED, duration_ns=GOLDEN_DURATION)
    return render_chrome_json(run.recorder)


def test_golden_trace_bytes():
    """A seeded run exports byte-identical trace JSON, forever."""
    assert golden_json() + "\n" == GOLDEN.read_text()


def test_same_seed_same_bytes():
    assert golden_json() == golden_json()


def validate_schema(doc: dict) -> None:
    events = doc["traceEvents"]
    assert events, "empty trace"
    # Async b/e pairing: every id opens exactly once and closes exactly
    # once, begin-before-end, within one (pid, tid, cat, name) identity.
    begins: dict[str, dict] = {}
    ended: set = set()
    prev_ts = None
    for ev in events:
        assert ev["ph"] in ("M", "b", "e", "i")
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert isinstance(ev["pid"], int) and ev["pid"] >= 1
            continue
        # Non-metadata events are sorted by timestamp.
        if prev_ts is not None:
            assert ev["ts"] >= prev_ts
        prev_ts = ev["ts"]
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "b":
            assert ev["id"] not in begins and ev["id"] not in ended
            begins[ev["id"]] = ev
        elif ev["ph"] == "e":
            assert ev["id"] in begins, f"end without begin: {ev['id']}"
            b = begins.pop(ev["id"])
            ended.add(ev["id"])
            assert ev["ts"] >= b["ts"]
            assert (ev["pid"], ev["tid"], ev["cat"], ev["name"]) == (
                b["pid"],
                b["tid"],
                b["cat"],
                b["name"],
            )
    assert not begins, f"unclosed span ids: {sorted(begins)}"

    # pid/tid mapping: every (pid, tid) used by a span event is named by
    # metadata, and process names are unique.
    named_pids = {
        ev["pid"]: ev["args"]["name"]
        for ev in events
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    named_tids = {
        (ev["pid"], ev["tid"])
        for ev in events
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert len(set(named_pids.values())) == len(named_pids)
    for ev in events:
        if ev["ph"] in ("b", "e", "i"):
            assert ev["pid"] in named_pids
            assert (ev["pid"], ev["tid"]) in named_tids


def test_golden_trace_schema():
    validate_schema(json.loads(GOLDEN.read_text()))


def test_stock_vs_ctmsp_export_has_all_categories():
    """The acceptance-criteria run: both profiles, >= 6 span categories."""
    runs = trace_stock_vs_ctmsp(seed=3, duration_ns=250 * MS)
    doc = chrome_trace([(r.profile, r.recorder) for r in runs])
    validate_schema(doc)
    cats = {ev["cat"] for ev in doc["traceEvents"] if "cat" in ev}
    assert set(CATEGORIES) <= cats
    assert len(cats) >= 6
    # Both profiles appear as distinct labeled processes.
    process_names = {
        ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    assert any(p.startswith("stock/") for p in process_names)
    assert any(p.startswith("ctmsp/") for p in process_names)


def test_clock_metadata_and_drop_accounting():
    run = run_traced("ctmsp", seed=GOLDEN_SEED, duration_ns=GOLDEN_DURATION)
    doc = chrome_trace(run.recorder)
    assert doc["otherData"]["clock"] == "simulated-ns"
    assert doc["otherData"]["dropped_open_spans"] == (
        run.recorder.open_count + run.recorder.stats_dropped_open
    )
