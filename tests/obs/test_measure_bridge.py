"""The paper-era instruments share the span recorder's timeline."""

import pytest

from repro.hardware import calibration
from repro.measure.pseudo_driver import PROBE_INTRUSION, PseudoDriverTracer, TraceEntry
from repro.obs.span import PointEvent, SpanRecorder
from repro.sim.engine import Simulator

pytestmark = pytest.mark.obs


def test_trace_entry_is_a_point_event():
    entry = TraceEntry("p2", 17, 122_000)
    assert isinstance(entry, PointEvent)
    assert entry.quantized_ns == entry.t_ns == 122_000
    assert (entry.point, entry.packet_no) == ("p2", 17)


def test_pseudo_driver_mirrors_into_recorder():
    sim = Simulator()
    rec = SpanRecorder(sim)
    tracer = PseudoDriverTracer(sim, recorder=rec)
    probe = tracer.probe("p2")
    sim.schedule(calibration.RTPC_CLOCK_GRANULARITY + 5, lambda: probe(9))
    sim.run()
    assert probe(9) == PROBE_INTRUSION
    # Both the instrument's own entries and the shared timeline quantize
    # identically to the 122 us clock.
    assert [e.quantized_ns for e in tracer.entries] == [p.t_ns for p in rec.points]
    assert rec.points[0].point == "p2" and rec.points[0].packet_no == 9


def test_pseudo_driver_without_recorder_unchanged():
    sim = Simulator()
    tracer = PseudoDriverTracer(sim)
    tracer.probe("p3")(4)
    assert len(tracer.entries) == 1


def test_tap_mirrors_captures_as_instants():
    from repro.experiments.tracing import run_traced
    from repro.measure.tap import TapMonitor
    from repro.sim.units import MS

    # Ride a real run: attach a TAP with the run's recorder to the ring
    # before traffic starts, then check instants landed on its track.
    from repro.core.session import CTMSSession
    from repro.experiments.chaos import profile_host_config
    from repro.experiments.testbed import Testbed

    bed = Testbed(seed=2)
    rec = SpanRecorder(bed.sim)
    tap = TapMonitor(bed.sim, bed.ring, recorder=rec)
    tx = bed.add_host(profile_host_config("ctmsp", "transmitter"))
    rx = bed.add_host(profile_host_config("ctmsp", "receiver"))
    session = CTMSSession(tx.kernel, rx.kernel)
    session.establish()
    bed.run(200 * MS)
    assert tap.records, "tap captured nothing"
    instants = [i for i in rec.instants if i.track == "tap/capture"]
    assert len(instants) == len(tap.records)
    assert instants[0].t_ns == tap.records[0].timestamp_ns
