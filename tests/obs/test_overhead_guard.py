"""Overhead guard: tracing must not perturb the simulation.

The instrumentation contract is *observe-only*: probes return None (so
drivers charge no time for them), listeners and monitors are synchronous
appends, and the recorder never schedules.  These tests pin the strongest
consequences: a traced run schedules exactly as many simulation events as
an untraced one, ends at the same simulated instant, delivers the same
packets, and produces byte-identical result figures.
"""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import test_case_a as case_a_scenario
from repro.experiments.tracing import run_traced
from repro.obs.instrument import DataPathTracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanRecorder
from repro.sim.units import MS, SEC

pytestmark = pytest.mark.obs

DURATION = 1 * SEC
SEED = 11


def run_once(traced: bool):
    tracer = None
    if traced:
        tracer = DataPathTracer(SpanRecorder(), MetricsRegistry())
    scenario = case_a_scenario(duration_ns=DURATION, seed=SEED)
    result = run_scenario(scenario, tracer=tracer)
    return result, tracer


def test_traced_run_schedules_no_extra_events():
    plain, _ = run_once(traced=False)
    traced, tracer = run_once(traced=True)
    assert tracer.recorder.spans, "tracer recorded nothing -- test is vacuous"
    assert traced.testbed.sim._seq == plain.testbed.sim._seq
    assert traced.testbed.sim.now == plain.testbed.sim.now


def test_traced_run_is_result_identical():
    plain, _ = run_once(traced=False)
    traced, _ = run_once(traced=True)
    assert traced.tracker.delivered == plain.tracker.delivered
    assert traced.tracker.lost_packets == plain.tracker.lost_packets
    for i in sorted(plain.histograms):
        a, b = plain.histograms[i], traced.histograms[i]
        assert a.count == b.count
        assert a.mean() == b.mean()
        assert a.std() == b.std()
        assert (a.min(), a.max()) == (b.min(), b.max())


def test_event_order_identical_under_tracing():
    """The executed calendar is the same, entry for entry."""
    from repro.core.session import CTMSSession
    from repro.experiments.chaos import profile_host_config
    from repro.experiments.testbed import Testbed

    def run(traced: bool):
        bed = Testbed(seed=5)
        bed.sim._record_trace = True
        tx = bed.add_host(profile_host_config("ctmsp", "transmitter"))
        rx = bed.add_host(profile_host_config("ctmsp", "receiver"))
        if traced:
            tracer = DataPathTracer(SpanRecorder(bed.sim))
            tracer.attach_transmitter(tx)
            tracer.attach_ring(bed.ring)
            tracer.attach_receiver(rx)
        session = CTMSSession(tx.kernel, rx.kernel)
        session.establish()
        bed.run(200 * MS)
        return bed.sim.trace

    plain, traced = run(False), run(True)
    # The tracer's delivery wrapper renames one generator frame; compare
    # times only for those entries, names for everything else.
    assert len(plain) == len(traced)
    assert [t for t, _n in plain] == [t for t, _n in traced]


def test_run_traced_smoke_has_full_pipeline():
    run = run_traced("ctmsp", seed=7, duration_ns=500 * MS)
    assert run.recorder.categories() == sorted(
        ["disk", "kernel-copy", "adapter", "ring", "protocol", "playout"]
    )
    assert run.session.sink_tracker.delivered > 0
    # Every delivered packet got a complete waterfall.
    falls = run.recorder.packet_waterfalls()
    assert len(falls) >= run.session.sink_tracker.delivered
