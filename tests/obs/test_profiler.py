"""Simulator(profile=True): host-CPU attribution without model impact."""

import pytest

from repro.sim.engine import Simulator

pytestmark = pytest.mark.obs


def drive(sim: Simulator) -> None:
    def tick():
        if sim.now < 1000:
            sim.schedule(100, tick)

    sim.schedule(0, tick)
    sim.run()


def test_profile_attributes_time_to_keys():
    sim = Simulator(profile=True)
    drive(sim)
    assert sim.profile_ns, "no profile data collected"
    assert sum(sim.profile_calls.values()) == 11
    key = next(iter(sim.profile_calls))
    assert "tick" in key
    assert all(ns >= 0 for ns in sim.profile_ns.values())


def test_profile_off_by_default():
    sim = Simulator()
    drive(sim)
    assert sim.profile_ns == {} and sim.profile_calls == {}


def test_profile_does_not_change_simulated_results():
    def run(profile: bool):
        sim = Simulator(profile=profile, record_trace=True)
        drive(sim)
        return sim.now, sim._seq, sim.trace

    assert run(False) == run(True)


def test_profile_report_renders():
    sim = Simulator(profile=True)
    drive(sim)
    report = sim.profile_report(top=5)
    assert "calls" in report and "tick" in report


def test_profile_report_without_data():
    assert "no profile data" in Simulator().profile_report()


def test_profile_key_uses_owner_name():
    sim = Simulator(profile=True)

    class Driver:
        name = "tx-driver"

        def step(self):
            pass

    sim.schedule(0, Driver().step)
    sim.run()
    assert any("tx-driver" in key for key in sim.profile_ns)
