"""MetricsRegistry: instrument semantics and deterministic rendering."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim.units import US

pytestmark = pytest.mark.obs


def test_counter_get_or_create_and_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("a.b")
    c.incr()
    c.incr(4)
    assert reg.counter("a.b") is c
    assert c.value == 5
    with pytest.raises(ValueError):
        c.incr(-1)


def test_gauge_envelope():
    reg = MetricsRegistry()
    g = reg.gauge("depth", unit="frames")
    for v in (3, 1, 7):
        g.set(v)
    assert (g.value, g.min_value, g.max_value, g.samples) == (7, 1, 7, 3)


def test_histogram_reuses_paper_histogram_type():
    from repro.measure.histogram import Histogram

    reg = MetricsRegistry()
    h = reg.histogram("lat", unit="ns", bin_width=10 * US)
    for v in (100 * US, 200 * US, 300 * US):
        h.record(v)
    assert isinstance(h.histogram, Histogram)
    summary = h.summary()
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(200.0)  # scaled ns -> us
    assert summary["min"] == pytest.approx(100.0)


def test_empty_histogram_summary():
    reg = MetricsRegistry()
    assert reg.histogram("nothing").summary() == {"count": 0}


def test_to_json_is_deterministic_and_sorted():
    def build():
        reg = MetricsRegistry()
        reg.counter("z.last").incr(1)
        reg.counter("a.first").incr(2)
        reg.gauge("mid").set(3)
        reg.histogram("h").record(50 * US)
        return reg.to_json()

    one, two = build(), build()
    assert one == two
    assert one.index('"a.first"') < one.index('"z.last"')


def test_render_tables_mentions_every_instrument():
    reg = MetricsRegistry()
    reg.counter("pkts").incr(9)
    reg.gauge("depth").set(2)
    reg.histogram("lat").record(120 * US)
    text = reg.render_tables()
    for name in ("pkts", "depth", "lat"):
        assert name in text
    assert "counters" in text and "gauges" in text and "histograms" in text


def test_render_tables_empty_registry():
    assert "no instruments" in MetricsRegistry().render_tables()
