"""Flight recorder: snapshot-on-violation via the duck-typed testbed hook."""

import pytest

from repro.experiments.chaos import build_plan, run_one
from repro.experiments.tracing import run_traced
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanRecorder
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC

pytestmark = pytest.mark.obs


def test_snapshot_freezes_current_telemetry():
    sim = Simulator()
    rec = SpanRecorder(sim)
    reg = MetricsRegistry()
    fr = FlightRecorder(recorder=rec, metrics=reg, tail=2)
    rec.add_span("a", "ring", "ring/wire", 0, 10)
    rec.add_span("b", "ring", "ring/wire", 10, 20)
    rec.add_span("c", "ring", "ring/wire", 20, 30)
    rec.begin(("open",), "inflight", "disk", "tx/disk")
    reg.counter("pkts").incr(3)
    snap = fr.snapshot("stream-starved", 30, {"detail": "gap"})
    assert fr.triggered
    assert [s.name for s in snap.recent_spans] == ["b", "c"]  # tail=2
    assert [s.name for s in snap.open_spans] == ["inflight"]
    assert snap.metrics["counters"]["pkts"]["value"] == 3
    # Later mutation does not leak into the frozen snapshot.
    reg.counter("pkts").incr(5)
    assert snap.metrics["counters"]["pkts"]["value"] == 3


def test_snapshot_cap_suppresses_extras():
    fr = FlightRecorder(max_snapshots=2)
    assert fr.snapshot("one", 1) is not None
    assert fr.snapshot("two", 2) is not None
    assert fr.snapshot("three", 3) is None
    assert len(fr.snapshots) == 2
    assert fr.stats_suppressed == 1
    assert "suppressed" in fr.render()


def test_render_lists_snapshots():
    fr = FlightRecorder()
    assert "no snapshots" in fr.render()
    fr.snapshot("playout-underrun", 2 * MS, {"glitches": 1})
    text = fr.render()
    assert "playout-underrun" in text and "glitches" in text


def test_chaos_run_snapshots_first_violation():
    """run_one wires the recorder to the invariant monitor's first trip."""
    duration = 4 * SEC
    plan = build_plan(1, 2.0, duration)
    fr = FlightRecorder()
    run = run_one("stock", plan, 1, duration, intensity=2.0, flight_recorder=fr)
    assert fr.triggered == bool(run.violations)
    assert len(fr.snapshots) == min(len(run.violations), fr.max_snapshots)
    for snap, violation in zip(fr.snapshots, run.violations):
        assert snap.reason == violation.invariant
        assert snap.at_ns == violation.at_ns
        assert snap.detail["detail"] == violation.detail


def test_chaos_run_results_unchanged_by_flight_recorder():
    duration = 2 * SEC
    plan = build_plan(3, 1.0, duration)
    plain = run_one("ctmsp", plan, 3, duration, intensity=1.0)
    observed = run_one(
        "ctmsp", plan, 3, duration, intensity=1.0,
        flight_recorder=FlightRecorder(),
    )
    assert observed.delivered == plain.delivered
    assert observed.lost_packets == plain.lost_packets
    assert observed.throughput_bytes_per_sec == plain.throughput_bytes_per_sec
    assert observed.violated == plain.violated


def test_run_traced_carries_flight_recorder():
    run = run_traced("ctmsp", seed=7, duration_ns=250 * MS)
    assert run.testbed.flight_recorder is run.flight
    assert run.flight.recorder is run.recorder
