"""Suppression hygiene and finding anchors.

CTMS001 flags inline disables that no longer match a finding; the
anchor regressions pin where findings land for decorated defs and
multi-line calls -- the two shapes where a suppression comment and its
finding historically drifted onto different lines.  SARIF output is
checked here too since CI annotators are the main anchor consumer.
"""

import json
import textwrap

from repro.analysis import lint_source, render_sarif, run_lint_v2
from repro.analysis.checkers import def_anchor_line
from repro.analysis.graph import ProjectGraph, summarize_module
from repro.analysis.taint import check_taint
from repro.analysis.v2 import check_unused_suppressions


def v2_over(tmp_path, source: str, name: str = "mod.py"):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / name).write_text(textwrap.dedent(source))
    return run_lint_v2([tmp_path / "repro"], cache_path=None)


# ----------------------------------------------------------------------
# CTMS001 -- unused suppressions
# ----------------------------------------------------------------------
def test_unused_suppression_flagged(tmp_path):
    report = v2_over(
        tmp_path,
        """
        def clamp(x):
            return max(0, x)  # ctms-lint: disable=CTMS103
        """,
    )
    assert [f.rule for f in report.new] == ["CTMS001"]
    assert report.new[0].severity == "warning"
    assert "CTMS103" in report.new[0].message


def test_used_suppression_is_not_flagged(tmp_path):
    report = v2_over(
        tmp_path,
        """
        import time


        def stamp():
            return time.time()  # ctms-lint: disable=CTMS103
        """,
    )
    assert report.new == []


def test_disable_all_counts_as_used_when_anything_fires(tmp_path):
    report = v2_over(
        tmp_path,
        """
        import time


        def stamp():
            return time.time()  # ctms-lint: disable=all
        """,
    )
    assert report.new == []


def test_unused_suppression_unit_level():
    modules = [
        summarize_module(
            "x = 1  # ctms-lint: disable=CTMS201\n", "repro/core/m.py"
        )
    ]
    findings = check_unused_suppressions(modules, [])
    assert [(f.rule, f.line) for f in findings] == [("CTMS001", 1)]


# ----------------------------------------------------------------------
# anchor regressions
# ----------------------------------------------------------------------
def test_def_anchor_skips_decorators():
    import ast

    tree = ast.parse(
        textwrap.dedent(
            """
            @property
            @staticmethod
            def f():
                ...
            """
        )
    )
    assert def_anchor_line(tree.body[0]) == 4


def test_ctms112_anchors_at_def_not_decorator():
    g = ProjectGraph(
        [
            summarize_module(
                textwrap.dedent(
                    """
                    import time
                    import functools


                    @functools.lru_cache(
                        maxsize=None,
                    )
                    def on_timer():
                        return time.time()


                    def arm(sim):
                        sim.schedule(1_000, on_timer)
                    """
                ),
                "repro/core/deco.py",
            )
        ]
    )
    findings = [f for f in check_taint(g) if f.rule == "CTMS112"]
    assert [f.line for f in findings] == [9]  # the `def`, not line 6


def test_multi_line_call_anchors_at_open_line():
    findings = lint_source(
        textwrap.dedent(
            """
            def arm(sim, fn):
                sim.schedule(
                    1.5,
                    fn,
                )
            """
        ),
        "repro/core/m.py",
    )
    assert [(f.rule, f.line) for f in findings] == [("CTMS201", 3)]


def test_suppression_on_call_open_line_works_for_multi_line_call():
    findings = lint_source(
        textwrap.dedent(
            """
            def arm(sim, fn):
                sim.schedule(  # ctms-lint: disable=CTMS201
                    1.5,
                    fn,
                )
            """
        ),
        "repro/core/m.py",
    )
    assert findings == []


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_document_shape(tmp_path):
    report = v2_over(
        tmp_path,
        """
        import time


        def stamp():
            return time.time()
        """,
    )
    doc = json.loads(render_sarif(report))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"CTMS001", "CTMS103", "CTMS111", "CTMS211", "CTMS212"} <= rule_ids
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["CTMS103"]
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 6
    assert region["startColumn"] >= 1
