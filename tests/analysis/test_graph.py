"""Project graph: module naming, summaries, and call resolution.

The graph is the substrate for every whole-program phase, so these
tests pin the resolution rules directly: local calls, ``self.method``,
module-qualified and ``from``-imported names, methods through
inheritance, and the reverse import map the dirty frontier uses.
"""

import textwrap

from repro.analysis.graph import (
    ModuleSummary,
    ProjectGraph,
    module_name,
    summarize_module,
)


def summarize(source: str, path: str) -> ModuleSummary:
    return summarize_module(textwrap.dedent(source), path)


def build(*files: tuple[str, str]) -> ProjectGraph:
    return ProjectGraph([summarize(src, path) for path, src in files])


def edge_map(graph: ProjectGraph) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for caller, callee, _line in graph.edges():
        out.setdefault(caller, set()).add(callee)
    return out


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------
def test_module_name_anchors_at_repro():
    assert module_name("src/repro/sim/engine.py")[0] == "repro.sim.engine"
    assert module_name("repro/core/session.py")[0] == "repro.core.session"


def test_package_init_is_flagged():
    dotted, is_package = module_name("src/repro/sim/__init__.py")
    assert dotted == "repro.sim"
    assert is_package


def test_non_repro_path_falls_back_to_stem():
    assert module_name("scripts/tool.py")[0] == "tool"


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
def test_summary_records_functions_and_methods():
    m = summarize(
        """
        def free(): ...

        class Box:
            def get(self):
                return self.free_slot()
        """,
        "repro/core/box.py",
    )
    assert {"free", "Box.get", "<module>"} <= set(m.functions)


def test_summary_round_trips_through_dict():
    m = summarize(
        """
        import time

        def stamp():
            return time.time()  # ctms-lint: disable=CTMS103
        """,
        "repro/core/stamp.py",
    )
    clone = ModuleSummary.from_dict(m.to_dict())
    assert clone.module == m.module
    assert clone.suppressions == m.suppressions
    assert sorted(clone.functions) == sorted(m.functions)
    assert [f.rule for f in clone.raw] == [f.rule for f in m.raw]


# ----------------------------------------------------------------------
# call resolution
# ----------------------------------------------------------------------
def test_local_and_self_calls_resolve():
    g = build(
        (
            "repro/core/a.py",
            """
            class Worker:
                def run(self):
                    self.step()
                    helper()

                def step(self): ...

            def helper(): ...
            """,
        )
    )
    edges = edge_map(g)
    assert edges["repro.core.a:Worker.run"] == {
        "repro.core.a:Worker.step",
        "repro.core.a:helper",
    }


def test_module_qualified_and_from_import_calls_resolve():
    g = build(
        (
            "repro/core/util.py",
            """
            def clamp(x): ...
            def scale(x): ...
            """,
        ),
        (
            "repro/core/b.py",
            """
            from repro.core import util
            from repro.core.util import scale

            def go(x):
                return util.clamp(scale(x))
            """,
        ),
    )
    assert edge_map(g)["repro.core.b:go"] == {
        "repro.core.util:clamp",
        "repro.core.util:scale",
    }


def test_method_resolves_through_inheritance():
    g = build(
        (
            "repro/core/base.py",
            """
            class Base:
                def tick(self): ...
            """,
        ),
        (
            "repro/core/child.py",
            """
            from repro.core.base import Base

            class Child(Base):
                def run(self):
                    self.tick()
            """,
        ),
    )
    assert "repro.core.base:Base.tick" in edge_map(g)["repro.core.child:Child.run"]


def test_constructor_call_resolves_to_init():
    g = build(
        (
            "repro/core/c.py",
            """
            class Thing:
                def __init__(self): ...

            def make():
                return Thing()
            """,
        )
    )
    assert edge_map(g)["repro.core.c:make"] == {"repro.core.c:Thing.__init__"}


# ----------------------------------------------------------------------
# reverse import map (the dirty frontier's substrate)
# ----------------------------------------------------------------------
def test_importers_of():
    g = build(
        ("repro/core/leaf.py", "def f(): ...\n"),
        ("repro/core/user.py", "from repro.core.leaf import f\n"),
        ("repro/core/other.py", "x = 1\n"),
    )
    leaf = g.modules["repro/core/leaf.py"]
    assert {m.path for m in g.importers_of(leaf)} == {"repro/core/user.py"}
