"""Unit dataflow: integer-ns discipline enforced through assignments,
arithmetic, scheduling calls, and cross-module positional arguments.

Per-file findings ride along in :func:`summarize_module`'s raw set;
cross-module positional-argument checks come from
:func:`check_graph_units` over the linked graph.
"""

import textwrap

from repro.analysis.dataflow import check_graph_units, dim_of_name, incompatible
from repro.analysis.graph import ProjectGraph, summarize_module


def raw_rules(source: str, path: str = "repro/core/example.py"):
    m = summarize_module(textwrap.dedent(source), path)
    return [(f.rule, f.line) for f in m.raw]


def graph_rules(*files: tuple[str, str]):
    g = ProjectGraph(
        [summarize_module(textwrap.dedent(src), path) for path, src in files]
    )
    return [(f.rule, f.file, f.line) for f in check_graph_units(g)]


# ----------------------------------------------------------------------
# naming conventions and dimension algebra
# ----------------------------------------------------------------------
def test_dim_of_name_conventions():
    assert dim_of_name("delay_ns") == "ns"
    assert dim_of_name("budget_bytes") == "bytes"
    assert dim_of_name("rate_bytes_per_sec") == "Bps"
    assert dim_of_name("now") == "ns"
    assert dim_of_name("n_frames_count") == "count"
    # Conversion helpers name their *input* unit, not their result.
    assert dim_of_name("from_sec") is None
    assert dim_of_name("per_byte") is None


def test_incompatible_pairs():
    assert incompatible("ns", "s")
    assert incompatible("bytes", "bits")
    assert incompatible("ns", "bytes")
    assert not incompatible("ns", "ns")
    assert not incompatible("ns", "count")
    assert not incompatible("ns", None)


# ----------------------------------------------------------------------
# CTMS211 -- float contamination of *_ns values
# ----------------------------------------------------------------------
def test_float_bound_to_ns_name_flagged():
    assert ("CTMS211", 3) in raw_rules(
        """
        def go(period_ns):
            smoothed_ns = period_ns * 0.5
            return smoothed_ns
        """
    )


def test_int_laundered_float_is_clean():
    assert raw_rules(
        """
        def go(period_ns):
            smoothed_ns = int(period_ns * 0.5)
            return smoothed_ns
        """
    ) == []


def test_float_return_from_ns_function_flagged():
    assert any(
        rule == "CTMS211"
        for rule, _ in raw_rules(
            """
            def mean_gap_ns(gaps):
                return sum(gaps) / len(gaps)
            """
        )
    )


def test_explicit_float_annotation_exempts_return():
    # `-> float` makes the boundary visible; no silent contamination.
    assert raw_rules(
        """
        def mean_gap_ns(gaps) -> float:
            return sum(gaps) / len(gaps)
        """
    ) == []


# ----------------------------------------------------------------------
# CTMS212 -- unit mismatches
# ----------------------------------------------------------------------
def test_seconds_bound_to_ns_name_flagged():
    assert ("CTMS212", 3) in raw_rules(
        """
        def go(timeout_s):
            timeout_ns = timeout_s
            return timeout_ns
        """
    )


def test_adding_bytes_and_bits_flagged():
    assert any(
        rule == "CTMS212"
        for rule, _ in raw_rules(
            """
            def total(hdr_bits, payload_bytes):
                return hdr_bits + payload_bytes
            """
        )
    )


def test_unit_constant_conversion_is_clean():
    assert raw_rules(
        """
        def go(timeout_s, SEC):
            timeout_ns = timeout_s * SEC
            return timeout_ns
        """
    ) == []


def test_division_by_sec_of_unknown_value_stays_unknown():
    # rate * period / SEC is a per-second normalization, not a time --
    # the regression that once tagged bytes_per_period as seconds.
    assert raw_rules(
        """
        def go(rate_bytes_per_sec, PERIOD, SEC):
            budget_bytes = round(rate_bytes_per_sec * PERIOD / SEC)
            return budget_bytes
        """
    ) == []


def test_named_factor_erases_dimension():
    # nbytes * ns_per_byte is a time, not bytes: the product of a
    # dimensioned value and an unknown named factor must stay unknown.
    assert raw_rules(
        """
        def wire_time(nbytes, ns_per_byte):
            wire_ns = nbytes * ns_per_byte
            return wire_ns
        """
    ) == []


def test_rate_times_seconds_gives_bytes():
    assert raw_rules(
        """
        def burst(rate_bytes_per_sec, window_s):
            burst_bytes = rate_bytes_per_sec * window_s
            return burst_bytes
        """
    ) == []
    assert any(
        rule == "CTMS212"
        for rule, _ in raw_rules(
            """
            def burst(rate_bytes_per_sec, window_s):
                burst_ns = rate_bytes_per_sec * window_s
                return burst_ns
            """
        )
    )


def test_schedule_first_argument_checked():
    assert any(
        rule == "CTMS212"
        for rule, _ in raw_rules(
            """
            def arm(sim, fn, gap_bytes):
                sim.schedule(gap_bytes, fn)
            """
        )
    )


# ----------------------------------------------------------------------
# cross-module positional arguments (needs the graph)
# ----------------------------------------------------------------------
def test_cross_module_second_unit_passed_to_ns_parameter():
    findings = graph_rules(
        (
            "repro/sim/timers.py",
            """
            def arm(delay_ns, fn): ...
            """,
        ),
        (
            "repro/core/user.py",
            """
            from repro.sim.timers import arm


            def go(fn, grace_s):
                arm(grace_s, fn)
            """,
        ),
    )
    assert [(r, f) for r, f, _l in findings] == [("CTMS212", "repro/core/user.py")]


def test_cross_module_matching_units_clean():
    assert graph_rules(
        (
            "repro/sim/timers.py",
            """
            def arm(delay_ns, fn): ...
            """,
        ),
        (
            "repro/core/user.py",
            """
            from repro.sim.timers import arm


            def go(fn, grace_ns):
                arm(grace_ns, fn)
            """,
        ),
    ) == []
