"""Baseline machinery: burn-down accounting, round-trips, stale entries."""

import json

from repro.analysis import apply_baseline, load_baseline, write_baseline
from repro.analysis.findings import Finding


def finding(file="src/repro/core/x.py", line=10, rule="CTMS201"):
    return Finding(
        file=file,
        line=line,
        col=0,
        rule=rule,
        severity="error",
        message="m",
        hint="h",
    )


def test_empty_baseline_everything_is_new():
    result = apply_baseline([finding()], {})
    assert len(result.new) == 1
    assert result.baselined == []
    assert result.stale == []


def test_baselined_findings_do_not_fail():
    baseline = {"src/repro/core/x.py": {"CTMS201": 2}}
    result = apply_baseline([finding(line=5), finding(line=9)], baseline)
    assert result.new == []
    assert len(result.baselined) == 2


def test_findings_beyond_allowance_are_new():
    baseline = {"src/repro/core/x.py": {"CTMS201": 1}}
    result = apply_baseline(
        [finding(line=5), finding(line=9), finding(line=30)], baseline
    )
    # The allowance covers the earliest finding; the two later ones fail.
    assert [f.line for f in result.baselined] == [5]
    assert [f.line for f in result.new] == [9, 30]


def test_allowance_is_per_file_and_rule():
    baseline = {"src/repro/core/x.py": {"CTMS201": 1}}
    result = apply_baseline(
        [finding(), finding(rule="CTMS103"), finding(file="src/repro/core/y.py")],
        baseline,
    )
    assert {(f.file, f.rule) for f in result.new} == {
        ("src/repro/core/x.py", "CTMS103"),
        ("src/repro/core/y.py", "CTMS201"),
    }


def test_stale_entries_reported():
    baseline = {"src/repro/core/gone.py": {"CTMS101": 3}}
    result = apply_baseline([], baseline)
    assert result.stale == [("src/repro/core/gone.py", "CTMS101")]


def test_write_then_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    written = write_baseline(
        [finding(line=5), finding(line=9), finding(rule="CTMS103")], path
    )
    assert written == {"src/repro/core/x.py": {"CTMS103": 1, "CTMS201": 2}}
    assert load_baseline(path) == written
    # And the file is valid, diff-stable JSON.
    assert json.loads(path.read_text()) == written


def test_load_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}


# ----------------------------------------------------------------------
# v2 rules ride the same ratchet
# ----------------------------------------------------------------------
def test_v2_rule_ids_baseline_like_any_other():
    baseline = {"src/repro/core/x.py": {"CTMS111": 1, "CTMS212": 1}}
    result = apply_baseline(
        [finding(rule="CTMS111"), finding(rule="CTMS212"), finding(rule="CTMS211")],
        baseline,
    )
    assert [f.rule for f in result.new] == ["CTMS211"]
    assert {f.rule for f in result.baselined} == {"CTMS111", "CTMS212"}
    assert result.stale == []


def test_write_baseline_then_fix_source_rejects_stale_entry(tmp_path, capsys):
    """The full ratchet round-trip through the CLI.

    ``--write-baseline`` records today's debt; fixing the source then
    makes that allowance stale, and a stale allowance fails the gate --
    debt may only be deleted, never kept as headroom.
    """
    from repro.cli import main

    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    mod = pkg / "clock.py"
    mod.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    baseline_path = tmp_path / "baseline.json"
    cache = tmp_path / "cache.json"

    def lint(*extra):
        return main(
            ["lint", str(tmp_path / "repro"), "--cache", str(cache), *extra]
        )

    # 1. Record the debt.
    assert lint("--v2", "--write-baseline", str(baseline_path)) == 0
    written = load_baseline(baseline_path)
    assert list(written.values()) == [{"CTMS103": 1}]

    # 2. Debt is allowed while it exists.
    assert lint("--v2", "--baseline", str(baseline_path)) == 0

    # 3. Fix the source: the allowance goes stale and the gate fails.
    mod.write_text("def stamp():\n    return 42\n")
    assert lint("--v2", "--baseline", str(baseline_path)) == 1
    out = capsys.readouterr().out
    assert "stale" in out

    # 4. Delete the stale entry (re-ratchet) and the gate is green again.
    assert lint("--v2", "--write-baseline", str(baseline_path)) == 0
    assert load_baseline(baseline_path) == {}
    assert lint("--v2", "--baseline", str(baseline_path)) == 0
