"""Baseline machinery: burn-down accounting, round-trips, stale entries."""

import json

from repro.analysis import apply_baseline, load_baseline, write_baseline
from repro.analysis.findings import Finding


def finding(file="src/repro/core/x.py", line=10, rule="CTMS201"):
    return Finding(
        file=file,
        line=line,
        col=0,
        rule=rule,
        severity="error",
        message="m",
        hint="h",
    )


def test_empty_baseline_everything_is_new():
    result = apply_baseline([finding()], {})
    assert len(result.new) == 1
    assert result.baselined == []
    assert result.stale == []


def test_baselined_findings_do_not_fail():
    baseline = {"src/repro/core/x.py": {"CTMS201": 2}}
    result = apply_baseline([finding(line=5), finding(line=9)], baseline)
    assert result.new == []
    assert len(result.baselined) == 2


def test_findings_beyond_allowance_are_new():
    baseline = {"src/repro/core/x.py": {"CTMS201": 1}}
    result = apply_baseline(
        [finding(line=5), finding(line=9), finding(line=30)], baseline
    )
    # The allowance covers the earliest finding; the two later ones fail.
    assert [f.line for f in result.baselined] == [5]
    assert [f.line for f in result.new] == [9, 30]


def test_allowance_is_per_file_and_rule():
    baseline = {"src/repro/core/x.py": {"CTMS201": 1}}
    result = apply_baseline(
        [finding(), finding(rule="CTMS103"), finding(file="src/repro/core/y.py")],
        baseline,
    )
    assert {(f.file, f.rule) for f in result.new} == {
        ("src/repro/core/x.py", "CTMS103"),
        ("src/repro/core/y.py", "CTMS201"),
    }


def test_stale_entries_reported():
    baseline = {"src/repro/core/gone.py": {"CTMS101": 3}}
    result = apply_baseline([], baseline)
    assert result.stale == [("src/repro/core/gone.py", "CTMS101")]


def test_write_then_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    written = write_baseline(
        [finding(line=5), finding(line=9), finding(rule="CTMS103")], path
    )
    assert written == {"src/repro/core/x.py": {"CTMS103": 1, "CTMS201": 2}}
    assert load_baseline(path) == written
    # And the file is valid, diff-stable JSON.
    assert json.loads(path.read_text()) == written


def test_load_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}
