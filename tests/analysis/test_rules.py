"""Fixture-based detection tests: every ctms-lint rule class fires.

Each fixture plants one deliberate violation (unseeded RNG, wall-clock
call, float delay, layering import, ...) and asserts the engine reports
exactly that rule at the right place -- plus the negative twins showing
the compliant spelling stays clean.
"""

import textwrap

from repro.analysis import RULES, lint_source
from repro.analysis.layering import package_of


def lint(source: str, path: str = "repro/core/example.py"):
    return lint_source(textwrap.dedent(source), path)


def rule_ids(source: str, path: str = "repro/core/example.py"):
    return [f.rule for f in lint(source, path)]


# ----------------------------------------------------------------------
# CTMS101 -- global random functions
# ----------------------------------------------------------------------
def test_global_random_call_flagged():
    findings = lint(
        """
        import random

        def jitter():
            return random.random() * 5
        """
    )
    assert [f.rule for f in findings] == ["CTMS101"]
    assert "global RNG" in findings[0].message
    assert "RandomStreams" in findings[0].hint


def test_module_alias_tracked():
    assert rule_ids(
        """
        import random as rnd

        x = rnd.randint(1, 6)
        """
    ) == ["CTMS101"]


def test_named_stream_use_is_clean():
    assert rule_ids(
        """
        from repro.sim.rng import RandomStreams

        rng = RandomStreams(7).get("arp")
        x = rng.random()
        """
    ) == []


# ----------------------------------------------------------------------
# CTMS102 -- unseeded random.Random()
# ----------------------------------------------------------------------
def test_unseeded_random_constructor_flagged():
    assert rule_ids(
        """
        import random

        rng = random.Random()
        """
    ) == ["CTMS102"]


def test_seeded_random_constructor_is_clean():
    assert rule_ids(
        """
        import random

        rng = random.Random(1234)
        """
    ) == []


def test_sim_rng_home_is_exempt():
    source = """
    import random

    stream = random.Random()
    """
    assert rule_ids(source, path="src/repro/sim/rng.py") == []
    assert rule_ids(source, path="src/repro/sim/engine.py") == ["CTMS102"]


# ----------------------------------------------------------------------
# CTMS103 -- wall clocks
# ----------------------------------------------------------------------
def test_time_time_flagged():
    assert rule_ids(
        """
        import time

        start = time.time()
        """
    ) == ["CTMS103"]


def test_perf_counter_and_sleep_flagged():
    assert rule_ids(
        """
        import time

        t = time.perf_counter()
        time.sleep(1)
        """
    ) == ["CTMS103", "CTMS103"]


def test_from_time_import_flagged_at_import():
    findings = lint(
        """
        from time import perf_counter
        """
    )
    assert [f.rule for f in findings] == ["CTMS103"]
    assert findings[0].line == 2


def test_datetime_now_flagged_via_type_and_module():
    assert rule_ids(
        """
        from datetime import datetime

        stamp = datetime.now()
        """
    ) == ["CTMS103"]
    assert rule_ids(
        """
        import datetime

        stamp = datetime.datetime.now()
        """
    ) == ["CTMS103"]


def test_simulator_now_is_clean():
    assert rule_ids(
        """
        def stamp(sim):
            return sim.now
        """
    ) == []


# ----------------------------------------------------------------------
# CTMS104 -- unordered iteration feeding the calendar
# ----------------------------------------------------------------------
def test_set_iteration_scheduling_flagged():
    findings = lint(
        """
        def arm(sim, stations):
            for station in set(stations):
                sim.schedule(10, station.wake)
        """
    )
    assert [f.rule for f in findings] == ["CTMS104"]
    assert "hash order" in findings[0].message


def test_keys_iteration_scheduling_flagged():
    assert rule_ids(
        """
        def arm(sim, hosts):
            for name in hosts.keys():
                sim.process(hosts[name].boot())
        """
    ) == ["CTMS104"]


def test_sorted_iteration_is_clean():
    assert rule_ids(
        """
        def arm(sim, stations):
            for station in sorted(set(stations)):
                sim.schedule(10, station.wake)
        """
    ) == []


def test_set_iteration_without_scheduling_is_clean():
    assert rule_ids(
        """
        def total(weights):
            acc = 0
            for w in set(weights):
                acc += w
            return acc
        """
    ) == []


# ----------------------------------------------------------------------
# CTMS105 -- from random import ...
# ----------------------------------------------------------------------
def test_from_random_import_flagged():
    assert rule_ids(
        """
        from random import choice
        """
    ) == ["CTMS105"]


# ----------------------------------------------------------------------
# CTMS201 -- float delays
# ----------------------------------------------------------------------
def test_float_literal_delay_flagged():
    findings = lint(
        """
        def arm(sim, fn):
            sim.schedule(1.5, fn)
        """
    )
    assert [f.rule for f in findings] == ["CTMS201"]
    assert "units.NS/US/MS/SEC" in findings[0].hint


def test_float_expression_delay_flagged():
    assert rule_ids(
        """
        MS = 1_000_000

        def arm(sim, fn):
            sim.at(0.5 * MS, fn)
        """
    ) == ["CTMS201"]


def test_true_division_delay_flagged():
    assert rule_ids(
        """
        def arm(sim, fn, period, n):
            sim.timeout(period / n)
        """
    ) == ["CTMS201"]


def test_float_ns_keyword_flagged():
    assert rule_ids(
        """
        def go(bed, SEC):
            bed.run(duration_ns=1.5 * SEC)
        """
    ) == ["CTMS201"]


def test_int_laundered_delay_is_clean():
    assert rule_ids(
        """
        def arm(sim, fn, period, n):
            sim.schedule(round(period / n), fn)
            sim.schedule(int(1.5 * 1000), fn)
        """
    ) == []


def test_from_ms_conversion_is_clean():
    assert rule_ids(
        """
        from repro.sim.units import from_ms

        def arm(sim, fn):
            sim.schedule(from_ms(1.5), fn)
        """
    ) == []


# ----------------------------------------------------------------------
# CTMS301/302 -- layering
# ----------------------------------------------------------------------
def test_package_of():
    assert package_of("src/repro/hardware/cpu.py") == "hardware"
    assert package_of("src/repro/cli.py") == ""
    assert package_of("somewhere/else.py") is None


def test_hardware_importing_drivers_flagged():
    findings = lint(
        """
        from repro.drivers.vca import VCADriver
        """,
        path="repro/hardware/adapter.py",
    )
    assert [f.rule for f in findings] == ["CTMS301"]
    assert "`hardware` sits below `drivers`" in findings[0].message


def test_hardware_importing_core_and_experiments_flagged():
    assert rule_ids(
        """
        from repro.core.session import CTMSSession
        import repro.experiments.testbed
        """,
        path="repro/hardware/adapter.py",
    ) == ["CTMS301", "CTMS301"]


def test_drivers_importing_experiments_flagged_even_lazily():
    assert rule_ids(
        """
        def run():
            from repro.experiments.testbed import Testbed
            return Testbed
        """,
        path="repro/drivers/token_ring.py",
    ) == ["CTMS301"]


def test_drivers_importing_hardware_is_clean():
    assert rule_ids(
        """
        from repro.hardware.cpu import CPU
        from repro.core.ctmsp import Packet
        """,
        path="repro/drivers/vca.py",
    ) == []


def test_sim_kernel_purity():
    assert rule_ids(
        """
        from repro.hardware.cpu import CPU
        """,
        path="repro/sim/engine.py",
    ) == ["CTMS301"]


def test_measure_observe_only():
    findings = lint(
        """
        from repro.drivers.vca import VCADriver
        from repro.core.ctmsp import Packet
        """,
        path="repro/measure/tap.py",
    )
    assert [f.rule for f in findings] == ["CTMS302"]
    assert "observe-only" in findings[0].message


def test_experiments_may_import_anything():
    assert rule_ids(
        """
        from repro.core.session import CTMSSession
        from repro.drivers.vca import VCADriver
        from repro.faults.plan import FaultPlan
        """,
        path="repro/experiments/chaos.py",
    ) == []


# ----------------------------------------------------------------------
# CTMS303 -- process machinery confined to the fleet supervisor
# ----------------------------------------------------------------------
def test_multiprocessing_import_flagged():
    findings = lint(
        """
        import multiprocessing
        """
    )
    assert [f.rule for f in findings] == ["CTMS303"]
    assert "fleet supervisor" in findings[0].message
    assert "repro/experiments/fleet.py" in findings[0].hint


def test_all_process_machinery_modules_flagged():
    assert rule_ids(
        """
        import subprocess
        import threading
        import signal
        from concurrent.futures import ProcessPoolExecutor
        """
    ) == ["CTMS303", "CTMS303", "CTMS303", "CTMS303"]


def test_fleet_home_may_use_processes_and_wall_clock():
    source = """
    import multiprocessing
    import signal
    import time

    def watchdog():
        return time.monotonic_ns()
    """
    assert rule_ids(source, path="src/repro/experiments/fleet.py") == []
    assert sorted(rule_ids(source, path="repro/experiments/chaos.py")) == [
        "CTMS103",
        "CTMS303",
        "CTMS303",
    ]


def test_signal_suffix_module_is_not_confused():
    # Only the *top-level* modules count; repro's own names that merely
    # contain a machinery word must stay clean.
    assert rule_ids(
        """
        from repro.core.signalling import Heartbeat
        """,
        path="repro/experiments/example.py",
    ) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_by_rule():
    assert rule_ids(
        """
        def arm(sim, fn):
            sim.schedule(1.5, fn)  # ctms-lint: disable=CTMS201
        """
    ) == []


def test_inline_suppression_all():
    assert rule_ids(
        """
        import random

        x = random.random()  # ctms-lint: disable=all
        """
    ) == []


def test_suppression_of_other_rule_does_not_apply():
    assert rule_ids(
        """
        def arm(sim, fn):
            sim.schedule(1.5, fn)  # ctms-lint: disable=CTMS101
        """
    ) == ["CTMS201"]


def test_suppression_comma_list():
    source = """
    import time

    def bad(sim, fn):
        sim.schedule(1.5 * time.time(), fn){comment}
    """
    assert sorted(rule_ids(source.format(comment=""))) == ["CTMS103", "CTMS201"]
    assert rule_ids(
        source.format(comment="  # ctms-lint: disable=CTMS103,CTMS201")
    ) == []


# ----------------------------------------------------------------------
# registry hygiene
# ----------------------------------------------------------------------
def test_every_rule_has_hint_and_severity():
    for rule in RULES.values():
        assert rule.id.startswith("CTMS")
        assert rule.severity in ("error", "warning")
        assert rule.summary and rule.hint


# ----------------------------------------------------------------------
# CTMS302 -- per-module observe-only coverage (telemetry, rollup)
# ----------------------------------------------------------------------
def test_rollup_module_is_observe_only_by_name():
    # experiments is otherwise unconstrained (it orchestrates), but the
    # journal aggregator is held observe-only: importing an actuator or
    # model layer from rollup.py is CTMS302, same source elsewhere in
    # experiments is clean.
    source = """
    from repro.core.session import CTMSSession
    from repro.faults.plan import FaultPlan
    """
    findings = lint(source, path="repro/experiments/rollup.py")
    assert [f.rule for f in findings] == ["CTMS302", "CTMS302"]
    assert "observe-only" in findings[0].message
    assert "experiments/rollup.py" in findings[0].message
    assert rule_ids(source, path="repro/experiments/chaos.py") == []


def test_rollup_may_import_fleet_and_reporting():
    # Same-package imports (the journal loader, the table renderer) are
    # exactly what the rollup is for.
    assert rule_ids(
        """
        from repro.experiments.fleet import Journal
        from repro.experiments.reporting import format_table
        """,
        path="repro/experiments/rollup.py",
    ) == []


def test_telemetry_module_named_in_observe_only_map():
    # obs/telemetry.py is already covered by the obs package rule; the
    # per-module entry keeps the contract if the module ever moves.
    findings = lint(
        """
        from repro.experiments.fleet import run_fleet
        """,
        path="repro/obs/telemetry.py",
    )
    assert [f.rule for f in findings] == ["CTMS302"]
    assert "obs/telemetry.py" in findings[0].message


# ----------------------------------------------------------------------
# CTMS103/303 -- the bench harness is a sanctioned host-clock home
# ----------------------------------------------------------------------
def test_bench_harness_is_a_sanctioned_clock_home():
    source = """
    import time

    def stopwatch():
        return time.perf_counter()
    """
    assert rule_ids(source, path="src/repro/bench/harness.py") == []
    # ...but only harness.py: the rest of the bench package stays clean.
    assert rule_ids(source, path="src/repro/bench/__init__.py") == ["CTMS103"]


# ----------------------------------------------------------------------
# CTMS304 -- control-plane policy confined to repro/core/control.py
# ----------------------------------------------------------------------
def test_policy_function_outside_control_home_flagged():
    findings = lint(
        """
        def decide_admission(request, ledger):
            return "admit"
        """,
        path="repro/experiments/failover.py",
    )
    assert [f.rule for f in findings] == ["CTMS304"]
    assert "control-plane policy" in findings[0].message
    assert "repro/core/control.py" in findings[0].hint


def test_every_policy_name_is_guarded():
    source = """
    def decide_admission(): ...
    def select_server(): ...
    def select_victims(): ...
    def plan_failover(): ...
    """
    assert rule_ids(source, path="repro/experiments/example.py") == [
        "CTMS304",
        "CTMS304",
        "CTMS304",
        "CTMS304",
    ]


def test_control_home_may_define_policy():
    source = """
    def decide_admission(request, ledger):
        return "admit"

    def select_victims(sessions):
        return []
    """
    assert rule_ids(source, path="src/repro/core/control.py") == []


def test_policy_methods_flagged_too():
    # A class wrapper is not an escape hatch: the policy decision still
    # lives outside its home.
    assert rule_ids(
        """
        class ShadowPlane:
            def select_victims(self):
                return []
        """,
        path="repro/experiments/example.py",
    ) == ["CTMS304"]


def test_calling_policy_is_not_defining_it():
    assert rule_ids(
        """
        from repro.core.control import SessionControlPlane

        def run(plane):
            return plane.select_victims()
        """,
        path="repro/experiments/failover.py",
    ) == []
