"""The lint gate: ctms-lint over ``src/`` must stay clean.

This is the CI teeth of the static pass (also reachable as ``make lint``).
The committed ``lint-baseline.json`` is empty -- any new determinism,
units, or layering violation in the library fails this test with the
engine's own diagnostics in the assertion message.
"""

from pathlib import Path

import pytest

from repro.analysis import load_baseline, run_lint, run_lint_v2

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.lint
def test_src_tree_is_lint_clean():
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    report = run_lint([REPO_ROOT / "src" / "repro"], baseline)
    assert report.files_scanned > 70
    assert report.ok(), "\n" + report.render_text()


@pytest.mark.lint
def test_src_tree_is_lint_v2_clean():
    # The whole-program pass: interprocedural taint, cross-module units,
    # and the suppression audit must all come back clean over src/ too
    # (cache disabled so the gate never trusts a stale summary).
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    report = run_lint_v2(
        [REPO_ROOT / "src" / "repro"], baseline, cache_path=None
    )
    assert report.files_scanned > 70
    assert report.ok(), "\n" + report.render_text()


@pytest.mark.lint
def test_committed_src_baseline_is_empty():
    # The satellite goal: src/ debt burned to zero.  Tests/examples may
    # carry a documented baseline, src/ may not.
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert not any(file.startswith("src/") for file in baseline)
