"""Interprocedural determinism inference: CTMS111/112 end to end.

The headline fixture is the acceptance scenario: module A calls B,
B reads the wall clock, and the transitive taint is reported *at A's
call site* -- then removing B's clock read clears the finding through
the incremental engine with only the dirty frontier re-analyzed.
"""

import textwrap
from pathlib import Path

from repro.analysis import run_lint_v2
from repro.analysis.graph import ProjectGraph, summarize_module
from repro.analysis.taint import check_taint, propagate_impurity


def summarize(source: str, path: str):
    return summarize_module(textwrap.dedent(source), path)


def build(*files: tuple[str, str]) -> ProjectGraph:
    return ProjectGraph([summarize(src, path) for path, src in files])


A_CALLS_B = """
from repro.core.b import read_sensor


def poll():
    return read_sensor()
"""

B_WITH_CLOCK = """
import time


def read_sensor():
    return time.time()
"""

B_CLEAN = """
def read_sensor():
    return 42
"""


def write_tree(root: Path, b_source: str) -> dict[str, Path]:
    pkg = root / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    (root / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    files = {
        "a": pkg / "a.py",
        "b": pkg / "b.py",
    }
    files["a"].write_text(textwrap.dedent(A_CALLS_B))
    files["b"].write_text(textwrap.dedent(b_source))
    return files


# ----------------------------------------------------------------------
# direct propagation (graph-level, no engine)
# ----------------------------------------------------------------------
def test_transitive_wall_clock_flagged_at_callers_call_site():
    g = build(
        ("repro/core/a.py", A_CALLS_B),
        ("repro/core/b.py", B_WITH_CLOCK),
    )
    impure = propagate_impurity(g)
    assert "repro.core.b:read_sensor" in impure
    findings = [f for f in check_taint(g) if f.rule == "CTMS111"]
    at_call_site = [f for f in findings if f.file == "repro/core/a.py"]
    assert at_call_site, findings
    # A's call to read_sensor() sits on line 6 of the dedented source.
    assert at_call_site[0].line == 6
    assert "read_sensor" in at_call_site[0].message


def test_witness_chain_names_the_original_source():
    g = build(
        ("repro/core/a.py", A_CALLS_B),
        ("repro/core/b.py", B_WITH_CLOCK),
    )
    impure = propagate_impurity(g)
    assert "wall-clock" in impure["repro.core.b:read_sensor"]


def test_clean_callee_produces_no_taint():
    g = build(
        ("repro/core/a.py", A_CALLS_B),
        ("repro/core/b.py", B_CLEAN),
    )
    assert [f for f in check_taint(g) if f.rule == "CTMS111"] == []


def test_suppressed_source_is_cleansed():
    g = build(
        ("repro/core/a.py", A_CALLS_B),
        (
            "repro/core/b.py",
            """
            import time


            def read_sensor():
                return time.time()  # ctms-lint: disable=CTMS103
            """,
        ),
    )
    assert [f for f in check_taint(g) if f.rule == "CTMS111"] == []


def test_sanctioned_home_is_a_taint_boundary():
    # fleet.py is the process/wall-clock home: functions there are never
    # impure, and calls *into* them do not propagate taint outward.
    g = build(
        (
            "repro/experiments/fleet.py",
            """
            import time


            def deadline():
                return time.time()
            """,
        ),
        (
            "repro/experiments/runner.py",
            """
            from repro.experiments.fleet import deadline


            def supervise():
                return deadline()
            """,
        ),
    )
    assert [f for f in check_taint(g) if f.rule == "CTMS111"] == []


def test_scheduled_impure_callback_flagged_ctms112():
    g = build(
        (
            "repro/core/node.py",
            """
            import time


            def on_timer():
                return time.time()


            def arm(sim):
                sim.schedule(1_000, on_timer)
            """,
        ),
    )
    findings = [f for f in check_taint(g) if f.rule == "CTMS112"]
    assert len(findings) == 1
    # Anchored at the impure callback's def line, naming the arming site.
    assert findings[0].line == 5
    assert "arm" in findings[0].message or "schedule" in findings[0].message


# ----------------------------------------------------------------------
# the acceptance round-trip through the incremental engine
# ----------------------------------------------------------------------
def test_removing_clock_read_clears_finding_incrementally(tmp_path):
    files = write_tree(tmp_path, B_WITH_CLOCK)
    cache = tmp_path / "cache.json"

    first = run_lint_v2([tmp_path / "repro"], cache_path=cache)
    rules = {f.rule for f in first.new}
    assert "CTMS111" in rules
    a_hits = [
        f
        for f in first.new
        if f.rule == "CTMS111" and f.file.endswith("repro/core/a.py")
    ]
    assert a_hits, first.new

    # Remove the wall-clock read; only b.py (and, via --changed semantics,
    # its importers) is dirty.  The cached summaries cover the rest.
    files["b"].write_text(textwrap.dedent(B_CLEAN))
    second = run_lint_v2(
        [tmp_path / "repro"], cache_path=cache, changed_only=True
    )
    assert [Path(p).name for p in second.reparsed] == ["b.py"]
    assert second.cache_hits == first.files_scanned - 1
    assert [f for f in second.new if f.rule == "CTMS111"] == []
    assert second.ok()
