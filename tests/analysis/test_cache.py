"""The incremental cache: hits, misses, invalidation, and the invariant
that caching never changes results -- it only skips work."""

import json
import textwrap

from repro.analysis import run_lint_v2
from repro.analysis.cache import SummaryCache, analyzer_fingerprint, content_hash
from repro.analysis.graph import summarize_module

SOURCE = textwrap.dedent(
    """
    import time


    def stamp():
        return time.time()
    """
)


def make_summary():
    return summarize_module(SOURCE, "repro/core/stamp.py")


def test_round_trip_hit(tmp_path):
    cache = SummaryCache(tmp_path / "c.json")
    sha = content_hash(SOURCE)
    cache.put("repro/core/stamp.py", sha, make_summary())
    cache.store()

    reloaded = SummaryCache(tmp_path / "c.json")
    summary = reloaded.get("repro/core/stamp.py", sha)
    assert summary is not None
    assert [f.rule for f in summary.raw] == ["CTMS103"]


def test_content_change_misses(tmp_path):
    cache = SummaryCache(tmp_path / "c.json")
    cache.put("repro/core/stamp.py", content_hash(SOURCE), make_summary())
    assert cache.get("repro/core/stamp.py", content_hash(SOURCE + "\n")) is None


def test_fingerprint_mismatch_discards_everything(tmp_path):
    path = tmp_path / "c.json"
    cache = SummaryCache(path)
    cache.put("repro/core/stamp.py", content_hash(SOURCE), make_summary())
    cache.store()

    data = json.loads(path.read_text())
    data["fingerprint"] = "0" * 16
    path.write_text(json.dumps(data))
    assert SummaryCache(path).entries == {}


def test_corrupt_cache_file_is_ignored(tmp_path):
    path = tmp_path / "c.json"
    path.write_text("{not json")
    assert SummaryCache(path).entries == {}


def test_prune_drops_dead_entries(tmp_path):
    cache = SummaryCache(tmp_path / "c.json")
    cache.put("repro/core/stamp.py", content_hash(SOURCE), make_summary())
    cache.prune({"repro/core/other.py"})
    assert cache.entries == {}


def test_fingerprint_covers_rule_registry():
    # Deterministic within a process; folds in every registered rule so
    # adding a rule invalidates all cached summaries.
    assert analyzer_fingerprint() == analyzer_fingerprint()
    assert len(analyzer_fingerprint()) == 16


def test_cached_and_uncached_runs_agree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "stamp.py").write_text(SOURCE)

    cold = run_lint_v2([tmp_path / "repro"], cache_path=tmp_path / "c.json")
    warm = run_lint_v2([tmp_path / "repro"], cache_path=tmp_path / "c.json")
    uncached = run_lint_v2([tmp_path / "repro"], cache_path=None)

    assert cold.reparsed and warm.reparsed == []
    assert warm.cache_hits == cold.files_scanned
    as_tuples = lambda r: [
        (f.file, f.line, f.rule) for f in r.findings
    ]
    assert as_tuples(cold) == as_tuples(warm) == as_tuples(uncached)
    assert {f.rule for f in cold.findings} == {"CTMS103"}
