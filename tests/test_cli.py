"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_defaults_to_list(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_quickstart_runs(capsys):
    assert main(["quickstart", "--seconds", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "delivered" in out
    assert "0 lost" in out


def test_copies_runs(capsys):
    assert main(["copies", "--seconds", "3"]) == 0
    out = capsys.readouterr().out
    assert "user_process" in out and "[ok]" in out


def test_fig5_3_runs(capsys):
    assert main(["fig5-3", "--seconds", "5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5-3" in out
    assert "10740us" in out  # the paper column


def test_histograms_requires_case():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["histograms"])


def test_histograms_runs(capsys):
    assert main(["histograms", "a", "--seconds", "3"]) == 0
    out = capsys.readouterr().out
    assert "Histograms 1-7" in out
    assert "h6" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# ----------------------------------------------------------------------
# repro lint
# ----------------------------------------------------------------------
@pytest.fixture
def dirty_tree(tmp_path):
    """A tiny repro-shaped tree with one violation of each rule class."""
    pkg = tmp_path / "repro"
    (pkg / "hardware").mkdir(parents=True)
    (pkg / "core").mkdir()
    (pkg / "hardware" / "adapter.py").write_text(
        "from repro.drivers.vca import VCADriver\n"
    )
    (pkg / "core" / "clocky.py").write_text(
        "import random\n"
        "import time\n"
        "def bad(sim, fn):\n"
        "    sim.schedule(1.5, fn)\n"
        "    return random.random() + time.time()\n"
    )
    return tmp_path


def test_lint_requires_paths():
    with pytest.raises(SystemExit):
        main(["lint"])


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("X = 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 file(s) scanned, clean" in out


def test_lint_dirty_tree_exits_one_with_diagnostics(dirty_tree, capsys):
    assert main(["lint", str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    for rule in ("CTMS101", "CTMS103", "CTMS201", "CTMS301"):
        assert rule in out
    assert "4 new finding(s)" in out
    assert "fix:" in out  # every finding carries its hint


def test_lint_json_output_is_machine_readable(dirty_tree, capsys):
    import json

    assert main(["lint", str(dirty_tree), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_scanned"] == 2
    findings = payload["findings"]
    assert {f["rule"] for f in findings} == {
        "CTMS101",
        "CTMS103",
        "CTMS201",
        "CTMS301",
    }
    for f in findings:
        assert set(f) == {
            "file",
            "line",
            "col",
            "rule",
            "severity",
            "message",
            "hint",
        }
        assert f["file"].endswith(".py") and f["line"] >= 1
        assert f["severity"] in ("error", "warning")
    layering = next(f for f in findings if f["rule"] == "CTMS301")
    assert layering["file"].endswith("repro/hardware/adapter.py")
    assert layering["line"] == 1


def test_lint_baseline_forgives_and_ratchets(dirty_tree, capsys, tmp_path):
    baseline = tmp_path / "baseline.json"
    # Write the current debt as the baseline, then the run is green...
    assert main(["lint", str(dirty_tree), "--write-baseline", str(baseline)]) == 0
    assert main(["lint", str(dirty_tree), "--baseline", str(baseline)]) == 0
    assert "baselined finding(s) suppressed" in capsys.readouterr().out
    # ...until a *new* violation lands on top of the baselined ones.
    extra = dirty_tree / "repro" / "core" / "fresh.py"
    extra.write_text("def bad(sim, fn):\n    sim.timeout(2.5)\n")
    assert main(["lint", str(dirty_tree), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out and "CTMS201" in out


def test_lint_unreadable_baseline_is_usage_error(dirty_tree, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]\n")
    assert main(["lint", str(dirty_tree), "--baseline", str(bad)]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_lint_listed_in_help(capsys):
    assert main(["list"]) == 0
    assert "lint" in capsys.readouterr().out
