"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_defaults_to_list(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_quickstart_runs(capsys):
    assert main(["quickstart", "--seconds", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "delivered" in out
    assert "0 lost" in out


def test_copies_runs(capsys):
    assert main(["copies", "--seconds", "3"]) == 0
    out = capsys.readouterr().out
    assert "user_process" in out and "[ok]" in out


def test_fig5_3_runs(capsys):
    assert main(["fig5-3", "--seconds", "5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5-3" in out
    assert "10740us" in out  # the paper column


def test_histograms_requires_case():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["histograms"])


def test_histograms_runs(capsys):
    assert main(["histograms", "a", "--seconds", "3"]) == 0
    out = capsys.readouterr().out
    assert "Histograms 1-7" in out
    assert "h6" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
