"""Edge-case tests for the socket layer: mbuf exhaustion, blocking recv."""

import pytest

from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.protocols.stack import NetStack
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess


def build_pair(seed=14, mbuf_clusters=64):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    a = bed.add_host(HostConfig(name="alpha"))
    b = bed.add_host(HostConfig(name="beta"))
    a.stack = NetStack(a.kernel, a.tr_driver)
    b.stack = NetStack(b.kernel, b.tr_driver)
    return bed, a, b


def test_sendto_waits_for_mbufs_when_pool_exhausted():
    """Section 2: mbuf allocation "can be delayed an arbitrarily long time"."""
    bed, a, b = build_pair()
    b.stack.udp_socket(6000)
    # Exhaust the sender's cluster pool.
    hold = []
    while True:
        try:
            hold.append(a.kernel.mbufs.try_alloc(is_cluster=True))
        except Exception:
            break
    sent = []

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        yield from sock.sendto("beta", 6000, 1200)
        sent.append(bed.sim.now)

    UserProcess(a.kernel, "tx").start(sender)
    bed.run(300 * MS)
    assert sent == []  # parked on the mbuf waiter list
    release_at = bed.sim.now
    for m in hold:
        m.free()
    bed.run(1 * SEC)
    assert sent and sent[0] >= release_at


def test_recvfrom_blocks_until_data():
    bed, a, b = build_pair()
    got = []

    def receiver(proc):
        sock = b.stack.udp_socket(6000)
        dgram = yield from sock.recvfrom()
        got.append((bed.sim.now, dgram.data_bytes))

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        yield from proc.sleep_ns(200 * MS)
        yield from sock.sendto("beta", 6000, 333)

    UserProcess(b.kernel, "rx").start(receiver)
    UserProcess(a.kernel, "tx").start(sender)
    bed.run(1 * SEC)
    assert got and got[0][0] >= 200 * MS
    assert got[0][1] == 333


def test_multiple_receivers_each_get_their_datagram():
    bed, a, b = build_pair()
    got = {}

    def receiver(port):
        def body(proc):
            sock = b.stack.udp_socket(port)
            dgram = yield from sock.recvfrom()
            got[port] = dgram.tag

        return body

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        yield from sock.sendto("beta", 6001, 100, tag="one")
        yield from sock.sendto("beta", 6002, 100, tag="two")

    UserProcess(b.kernel, "rx1").start(receiver(6001))
    UserProcess(b.kernel, "rx2").start(receiver(6002))
    UserProcess(a.kernel, "tx").start(sender)
    bed.run(1 * SEC)
    assert got == {6001: "one", 6002: "two"}


def test_datagram_to_unbound_port_dropped_and_counted():
    bed, a, b = build_pair()

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        yield from sock.sendto("beta", 7777, 100)

    UserProcess(a.kernel, "tx").start(sender)
    bed.run(1 * SEC)
    assert b.stack.udp.stats_no_socket == 1
    assert b.kernel.mbufs.bytes_in_use() == 0  # the chain was freed


def test_no_mbuf_leaks_across_many_datagrams():
    bed, a, b = build_pair()
    count = 40

    def receiver(proc):
        sock = b.stack.udp_socket(6000)
        for _ in range(count):
            yield from sock.recvfrom()

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        for i in range(count):
            yield from sock.sendto("beta", 6000, 700)

    UserProcess(b.kernel, "rx").start(receiver)
    UserProcess(a.kernel, "tx").start(sender)
    bed.run(5 * SEC)
    assert a.kernel.mbufs.bytes_in_use() == 0
    assert b.kernel.mbufs.bytes_in_use() == 0
