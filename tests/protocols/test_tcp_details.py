"""Focused tests for TCP mechanics: window, acks, retransmission timing."""

import pytest

from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.protocols.stack import NetStack
from repro.protocols.tcp import TCP_RTO, TCP_WINDOW_BYTES, TcpConnection
from repro.protocols.headers import TCP_MSS
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess


def build_pair(seed=8):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    a = bed.add_host(HostConfig(name="alpha"))
    b = bed.add_host(HostConfig(name="beta"))
    a.stack = NetStack(a.kernel, a.tr_driver)
    b.stack = NetStack(b.kernel, b.tr_driver)
    return bed, a, b


def connect_pair(bed, a, b, drain=True):
    state = {}

    def server(proc):
        b.stack.tcp_listen(9000)
        while not b.stack.tcp.accepted(9000):
            yield from proc.sleep_ns(5 * MS)
        state["server_conn"] = b.stack.tcp.accepted(9000)[0]
        if drain:
            while True:
                yield from state["server_conn"].recv(1 << 20)

    def client(proc):
        conn = yield from a.stack.tcp_connect(1234, "beta", 9000)
        state["client_conn"] = conn

    UserProcess(b.kernel, "srv").start(server)
    UserProcess(a.kernel, "cli").start(client)
    bed.run(1 * SEC)
    return state


def test_window_blocks_sender_until_acks_return():
    bed, a, b = build_pair()
    state = connect_pair(bed, a, b, drain=False)  # server never recv()s
    conn = state["client_conn"]
    sent = {}

    def big_send(proc):
        n = yield from conn.send(20_000)
        sent["n"] = n

    UserProcess(a.kernel, "sender").start(big_send)
    bed.run(3 * SEC)
    # Receiver acks data regardless of the app reading it in this model,
    # so the transfer completes -- but never with more than a window in
    # flight at once.
    assert sent.get("n") == 20_000
    assert conn.snd_nxt - conn.snd_una <= TCP_WINDOW_BYTES


def test_mss_segmentation_conserves_bytes():
    bed, a, b = build_pair()
    state = connect_pair(bed, a, b)
    conn = state["client_conn"]
    before = conn.stats_segments_out

    def send(proc):
        yield from conn.send(5 * TCP_MSS)

    UserProcess(a.kernel, "sender").start(send)
    bed.run(3 * SEC)
    # Every byte arrived in order; the window may split segments below the
    # MSS (4096-byte window / 1460-byte MSS), so the count is 5..8.
    assert state["server_conn"].rcv_nxt == 5 * TCP_MSS
    data_segments = conn.stats_segments_out - before
    assert 5 <= data_segments <= 8
    # No segment exceeded the MSS.
    assert conn.snd_nxt == 5 * TCP_MSS


def test_ack_per_data_segment():
    bed, a, b = build_pair()
    state = connect_pair(bed, a, b)
    conn = state["client_conn"]
    server_conn = state["server_conn"]
    acks_before = server_conn.stats_acks_out
    segs_before = conn.stats_segments_out

    def send(proc):
        yield from conn.send(4 * TCP_MSS)

    UserProcess(a.kernel, "sender").start(send)
    bed.run(3 * SEC)
    data_segments = conn.stats_segments_out - segs_before
    # Immediate ack policy: exactly one ack per data segment received.
    assert server_conn.stats_acks_out - acks_before == data_segments


def test_rto_retransmits_after_loss():
    bed, a, b = build_pair()
    state = connect_pair(bed, a, b)
    conn = state["client_conn"]

    def send(proc):
        yield from conn.send(TCP_MSS)

    UserProcess(a.kernel, "sender").start(send)
    # Purge precisely while the data segment is on the wire.
    t0 = bed.sim.now
    for k in range(4):
        bed.sim.schedule(6 * MS + k * 2 * MS, bed.ring.purge)
    bed.run(5 * SEC)
    if bed.ring.stats_lost_by_protocol.get("ip"):
        assert conn.stats_retransmits >= 1
    # Either way the data eventually arrived.
    assert state["server_conn"].rcv_nxt >= TCP_MSS


def test_rto_is_about_half_a_second():
    assert TCP_RTO == 500 * MS


def test_connection_reuse_ports_demuxed():
    bed, a, b = build_pair()
    b.stack.tcp_listen(9000)
    b.stack.tcp_listen(9001)
    got = {}

    def client(port):
        def body(proc):
            conn = yield from a.stack.tcp_connect(1000 + port, "beta", port)
            yield from conn.send(TCP_MSS)
            got[port] = conn

        return body

    UserProcess(a.kernel, "c1").start(client(9000))
    UserProcess(a.kernel, "c2").start(client(9001))
    bed.run(3 * SEC)
    assert len(b.stack.tcp.accepted(9000)) == 1
    assert len(b.stack.tcp.accepted(9001)) == 1
    assert b.stack.tcp.accepted(9000)[0].rcv_nxt == TCP_MSS
    assert b.stack.tcp.accepted(9001)[0].rcv_nxt == TCP_MSS
