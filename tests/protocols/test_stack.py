"""Integration tests for the ARP/IP/UDP/TCP stack over the ring."""

import pytest

from repro.experiments.testbed import HostConfig
from repro.experiments.testbed import Testbed as _Testbed
from repro.protocols.stack import NetStack
from repro.sim.units import MS, SEC
from repro.unix.process import UserProcess


def build_pair(seed=2):
    bed = _Testbed(seed=seed, mac_utilization=0.0)
    a = bed.add_host(HostConfig(name="alpha"))
    b = bed.add_host(HostConfig(name="beta"))
    a.stack = NetStack(a.kernel, a.tr_driver)
    b.stack = NetStack(b.kernel, b.tr_driver)
    return bed, a, b


def test_udp_datagram_crosses_the_ring():
    bed, a, b = build_pair()
    got = []

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        yield from sock.sendto("beta", 6000, 512, tag="hello")

    def receiver(proc):
        sock = b.stack.udp_socket(6000)
        dgram = yield from sock.recvfrom()
        got.append((dgram.tag, dgram.data_bytes, dgram.src_host))

    UserProcess(b.kernel, "rx").start(receiver)
    UserProcess(a.kernel, "tx").start(sender)
    bed.run(2 * SEC)
    assert got == [("hello", 512, "alpha")]


def test_arp_resolves_once_then_caches():
    bed, a, b = build_pair()

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        for i in range(5):
            yield from sock.sendto("beta", 6000, 100)

    b.stack.udp_socket(6000)
    UserProcess(a.kernel, "tx").start(sender)
    bed.run(2 * SEC)
    assert a.stack.arp.stats_requests_sent == 1
    assert a.stack.arp.stats_cache_hits >= 4
    assert b.stack.arp.stats_replies_sent == 1


def test_arp_traffic_appears_on_the_wire():
    bed, a, b = build_pair()
    b.stack.udp_socket(6000)

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        yield from sock.sendto("beta", 6000, 64)

    UserProcess(a.kernel, "tx").start(sender)
    bed.run(1 * SEC)
    assert bed.ring.stats_by_protocol["arp"]["frames"] == 2  # request + reply


def test_udp_socket_buffer_overflow_drops():
    bed, a, b = build_pair()
    sock_b = b.stack.udp_socket(6000, rcvbuf=2048)  # no reader attached

    def sender(proc):
        sock = a.stack.udp_socket(5000)
        for i in range(8):
            yield from sock.sendto("beta", 6000, 1000)

    UserProcess(a.kernel, "tx").start(sender)
    bed.run(3 * SEC)
    assert sock_b.stats_drops_full_buffer == 6  # only 2 x 1000B fit


def test_udp_port_collision_rejected():
    bed, a, b = build_pair()
    a.stack.udp_socket(5000)
    with pytest.raises(ValueError):
        a.stack.udp_socket(5000)


def test_tcp_handshake_and_transfer():
    bed, a, b = build_pair()
    results = {}

    def server(proc):
        b.stack.tcp_listen(9000)
        # Wait for a connection to appear, then drain 5000 bytes.
        while not b.stack.tcp.accepted(9000):
            yield from proc.sleep_ns(10 * MS)
        conn = b.stack.tcp.accepted(9000)[0]
        got = 0
        while got < 5000:
            got += yield from conn.recv(5000 - got)
        results["server_got"] = got

    def client(proc):
        conn = yield from a.stack.tcp_connect(1234, "beta", 9000)
        yield from conn.send(5000)
        results["client_sent"] = 5000
        results["segments"] = conn.stats_segments_out

    UserProcess(b.kernel, "srv").start(server)
    UserProcess(a.kernel, "cli").start(client)
    bed.run(5 * SEC)
    assert results.get("server_got") == 5000
    assert results.get("client_sent") == 5000
    # 5000 bytes at MSS 1460 = 4 data segments (+ SYN + final ack traffic).
    assert results["segments"] >= 5


def test_tcp_generates_ack_traffic():
    """Section 3: sequence preservation costs acknowledgment traffic."""
    bed, a, b = build_pair()

    def server(proc):
        b.stack.tcp_listen(9000)
        while not b.stack.tcp.accepted(9000):
            yield from proc.sleep_ns(10 * MS)
        conn = b.stack.tcp.accepted(9000)[0]
        got = 0
        while got < 20_000:
            got += yield from conn.recv(20_000)

    def client(proc):
        conn = yield from a.stack.tcp_connect(1234, "beta", 9000)
        yield from conn.send(20_000)

    UserProcess(b.kernel, "srv").start(server)
    UserProcess(a.kernel, "cli").start(client)
    bed.run(10 * SEC)
    server_conn = b.stack.tcp.accepted(9000)[0]
    # One ack per data segment: 20000/1460 -> 14 data segments.
    assert server_conn.stats_acks_out >= 14
    # CTMSP sends zero protocol-overhead frames; TCP's show up on the wire.
    ip_frames = bed.ring.stats_by_protocol["ip"]["frames"]
    assert ip_frames >= 28  # data + acks


def test_tcp_retransmits_after_purge_loss():
    bed, a, b = build_pair()
    done = {}

    def server(proc):
        b.stack.tcp_listen(9000)
        while not b.stack.tcp.accepted(9000):
            yield from proc.sleep_ns(10 * MS)
        conn = b.stack.tcp.accepted(9000)[0]
        got = 0
        while got < 10_000:
            got += yield from conn.recv(10_000)
        done["got"] = got

    def client(proc):
        conn = yield from a.stack.tcp_connect(1234, "beta", 9000)
        yield from conn.send(10_000)
        done["conn"] = conn

    UserProcess(b.kernel, "srv").start(server)
    UserProcess(a.kernel, "cli").start(client)
    # Purge the ring repeatedly while the transfer is in flight.
    for t in range(3):
        bed.sim.schedule(200 * MS + t * 5 * MS, bed.ring.purge)
    bed.run(20 * SEC)
    assert done.get("got") == 10_000  # reliability recovered the loss
    conn = done["conn"]
    assert conn.stats_retransmits >= 0  # retransmit machinery exercised
    if bed.ring.stats_frames_lost_to_purge > 0:
        assert conn.stats_retransmits >= 1
