"""Perf-trajectory harness: workloads, the regression check, the CLI gate.

Machine-independence discipline: the injected-regression tests compare
against *synthetic* baselines (absurdly fast or absurdly slow), so they
pass on any host; only the final smoke compares a quick run against the
committed ``BENCH_kernel.json``, and does so at a tolerance far below any
plausible scheduler jitter.
"""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.bench import WORKLOADS, check_bench, load_bench, run_bench, write_bench

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_BASELINE = REPO_ROOT / "BENCH_kernel.json"


@pytest.fixture(scope="module")
def quick_payload():
    return run_bench(quick=True)


def test_payload_shape(quick_payload):
    assert set(quick_payload["workloads"]) == set(WORKLOADS)
    for name, workload in quick_payload["workloads"].items():
        assert workload["events"] > 0, name
        assert workload["events_per_sec"] > 0, name
        assert workload["packets"] > 0, name
        assert workload["wall_s"] > 0, name
    hotspots = quick_payload["kernel_hotspots"]
    assert hotspots and all(h["pct"] >= 0 for h in hotspots)
    assert quick_payload["config"]["quick"] is True


def test_write_and_load_round_trip(quick_payload, tmp_path):
    out = tmp_path / "BENCH_test.json"
    write_bench(quick_payload, out)
    assert load_bench(out) == quick_payload
    (tmp_path / "junk.json").write_text('{"not": "a bench artifact"}')
    with pytest.raises(ValueError, match="no 'workloads'"):
        load_bench(tmp_path / "junk.json")


def test_check_passes_against_itself(quick_payload):
    assert check_bench(quick_payload, quick_payload) == []


def test_check_flags_injected_regression(quick_payload):
    # A baseline claiming 1000x our throughput: every workload regresses.
    impossible = json.loads(json.dumps(quick_payload))
    for workload in impossible["workloads"].values():
        workload["events_per_sec"] *= 1000
    messages = check_bench(quick_payload, impossible)
    assert len(messages) == len(WORKLOADS)
    assert all("events/sec is below" in m for m in messages)
    # ...while a baseline 1000x slower passes clean.
    glacial = json.loads(json.dumps(quick_payload))
    for workload in glacial["workloads"].values():
        workload["events_per_sec"] = max(1, workload["events_per_sec"] // 1000)
    assert check_bench(quick_payload, glacial) == []


def test_check_flags_changed_event_counts_on_full_runs(quick_payload):
    # Same seed must schedule the same calendar: a non-quick run whose sim
    # event count drifted from the baseline means the workload changed.
    full = json.loads(json.dumps(quick_payload))
    full["config"]["quick"] = False
    drifted = json.loads(json.dumps(full))
    drifted["workloads"]["kernel"]["events"] += 7
    messages = check_bench(drifted, full)
    assert len(messages) == 1 and "workload itself changed" in messages[0]
    # Quick runs skip the exact-count comparison (different duration).
    assert check_bench(quick_payload, quick_payload) == []


def test_check_ignores_workloads_missing_from_either_side(quick_payload):
    trimmed = json.loads(json.dumps(quick_payload))
    del trimmed["workloads"]["fleet_campaign"]
    assert check_bench(quick_payload, trimmed) == []
    assert check_bench(trimmed, quick_payload) == []


def test_check_rejects_bad_tolerance(quick_payload):
    with pytest.raises(ValueError, match="tolerance"):
        check_bench(quick_payload, quick_payload, tolerance=0.0)


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------
def test_cli_check_exits_nonzero_on_injected_regression(tmp_path, capsys):
    impossible = run_bench(quick=True)
    for workload in impossible["workloads"].values():
        workload["events_per_sec"] *= 1000
    baseline = tmp_path / "BENCH_fake.json"
    write_bench(impossible, baseline)
    code = cli.main(
        ["bench", "--check", "--quick", "--baseline", str(baseline)]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESSION" in captured.err
    assert "regressed" in captured.out


def test_cli_check_errors_cleanly_without_baseline(tmp_path, capsys):
    code = cli.main(
        ["bench", "--check", "--quick", "--baseline",
         str(tmp_path / "missing.json")]
    )
    assert code == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_cli_bench_writes_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_out.json"
    assert cli.main(["bench", "--quick", "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert set(load_bench(out)["workloads"]) == set(WORKLOADS)


def test_quick_check_against_committed_baseline(capsys):
    """The smoke `make test` runs: the committed artifact is honest.

    Tolerance 0.05 asks only that this host is within 20x of the machine
    that wrote BENCH_kernel.json -- loose enough for any CI box, tight
    enough to catch an accidental quadratic in the kernel hot path.
    """
    assert COMMITTED_BASELINE.is_file(), "BENCH_kernel.json must be committed"
    code = cli.main(
        ["bench", "--check", "--quick", "--tolerance", "0.05",
         "--baseline", str(COMMITTED_BASELINE)]
    )
    assert code == 0, capsys.readouterr().err
