PYTHON ?= python

export PYTHONPATH := src

.PHONY: test lint chaos bench examples

# Static analysis first: a determinism/layering violation fails fast,
# before the (slower) simulation suites run.
test: lint
	$(PYTHON) -m pytest -q

# ctms-lint over the library sources (rules + suppression syntax are
# documented in docs/ANALYSIS.md).  The committed baseline is empty for
# src/ -- new findings fail the build.
lint:
	$(PYTHON) -m repro lint src/repro --baseline lint-baseline.json

# The chaos smoke campaign on its own (also part of the default test run,
# via tests/experiments/test_chaos.py).
chaos:
	$(PYTHON) -m repro chaos --smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) "$$f" || exit 1; done
