PYTHON ?= python

export PYTHONPATH := src

.PHONY: test lint chaos bench examples trace-demo

# Static analysis first: a determinism/layering violation fails fast,
# before the (slower) simulation suites run.
test: lint
	$(PYTHON) -m pytest -q

# ctms-lint over the library sources (rules + suppression syntax are
# documented in docs/ANALYSIS.md).  The committed baseline is empty for
# src/ -- new findings fail the build.
lint:
	$(PYTHON) -m repro lint src/repro --baseline lint-baseline.json

# The chaos smoke campaign on its own (also part of the default test run,
# via tests/experiments/test_chaos.py).
chaos:
	$(PYTHON) -m repro chaos --smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) "$$f" || exit 1; done

# The observability layer end to end: the worst-packet waterfall example,
# then a stock-vs-CTMSP side-by-side Chrome-trace export (trace.json).
trace-demo:
	$(PYTHON) examples/trace_viewer.py
	$(PYTHON) -m repro trace --seed 7 --seconds 2 --out trace.json
