PYTHON ?= python

export PYTHONPATH := src

.PHONY: test chaos bench examples

test:
	$(PYTHON) -m pytest -q

# The chaos smoke campaign on its own (also part of the default test run,
# via tests/experiments/test_chaos.py).
chaos:
	$(PYTHON) -m repro chaos --smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) "$$f" || exit 1; done
