PYTHON ?= python

export PYTHONPATH := src

.PHONY: test lint lint-v2 chaos chaos-par bench bench-check bench-compare bench-micro bench-fleet bench-lint examples trace-demo

# Static analysis first: a determinism/layering violation fails fast,
# before the (slower) simulation suites run.  `make lint-v2` is a good
# pre-push check: the summary cache makes a clean re-run near-instant.
test: lint lint-v2
	$(PYTHON) -m pytest -q

# ctms-lint over the library sources (rules + suppression syntax are
# documented in docs/ANALYSIS.md).  The committed baseline is empty for
# src/ -- new findings fail the build.
lint:
	$(PYTHON) -m repro lint src/repro --baseline lint-baseline.json

# Whole-program pass: cross-module determinism inference (CTMS111/112),
# integer-ns unit dataflow (CTMS211/212), unused-suppression audit
# (CTMS001).  Incremental via .ctms-lint-cache.json.
lint-v2:
	$(PYTHON) -m repro lint src/repro --v2 --baseline lint-baseline.json

# The chaos smoke campaigns on their own: fault survival, then the
# control-plane failover scenario.  Both are also part of the default
# test run behind the `chaos` pytest marker (tests/experiments/
# test_chaos.py, test_failover.py); `pytest -m "not chaos"` skips them.
chaos:
	$(PYTHON) -m repro chaos --smoke
	$(PYTHON) -m repro chaos --scenario failover --smoke

# The supervised parallel fleet: 4 seeds sharded over 4 workers, results
# journalled under .fleet/ (resume a killed run with --resume).
chaos-par:
	$(PYTHON) -m repro chaos --jobs 4 --seeds 4 --seconds 2 --intensities 1.0

# Perf trajectory: run the standard kernel/chaos/fleet workloads and
# refresh the committed BENCH_kernel.json baseline.  `make bench-check`
# reruns them and fails if throughput regressed past tolerance (the
# default test run includes a fast --quick smoke of the same check).
bench:
	$(PYTHON) -m repro bench

bench-check:
	$(PYTHON) -m repro bench --check

# Trajectory between two committed artifacts, e.g. the baseline at an old
# ref vs the working tree:
#   git show v0:BENCH_kernel.json > /tmp/old.json
#   make bench-compare OLD=/tmp/old.json NEW=BENCH_kernel.json
OLD ?= /tmp/old.json
NEW ?= BENCH_kernel.json
bench-compare:
	$(PYTHON) -m repro bench --compare $(OLD) $(NEW)

# pytest-benchmark micro-benchmarks (timer wheel, heap ops).
bench-micro:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fleet scaling benchmark: wall-clock jobs=1 vs jobs=4 (writes BENCH_fleet.json).
bench-fleet:
	$(PYTHON) benchmarks/fleet_bench.py

# Lint engine benchmark: cold vs warm-cache wall-clock over src/
# (writes BENCH_lint.json).
bench-lint:
	$(PYTHON) benchmarks/lint_bench.py

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) "$$f" || exit 1; done

# The observability layer end to end: the worst-packet waterfall example,
# then a stock-vs-CTMSP side-by-side Chrome-trace export (trace.json).
trace-demo:
	$(PYTHON) examples/trace_viewer.py
	$(PYTHON) -m repro trace --seed 7 --seconds 2 --out results/trace.json
